//! Flat self-time profile: per-span-name aggregation of a [`Trace`].

use crate::trace::Trace;

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileEntry {
    /// The span name.
    pub name: String,
    /// How many spans carried this name.
    pub count: u64,
    /// Total wall-clock nanoseconds across those spans (children
    /// included).
    pub total_ns: u64,
    /// Self nanoseconds: total minus time attributed to child spans.
    pub self_ns: u64,
    /// The longest single span of this name, in nanoseconds.
    pub max_ns: u64,
    /// Allocation events (allocs + reallocs) across those spans, children
    /// included. Zero unless `mule_obs::alloc` was armed during the trace.
    pub allocs: u64,
    /// Bytes allocated across those spans, children included.
    pub alloc_bytes: u64,
    /// The largest single-span live-bytes high-water mark.
    pub peak_live: u64,
}

/// A flat profile: one [`ProfileEntry`] per distinct span name, sorted by
/// self time (descending), ties broken by name so the ordering is stable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlatProfile {
    /// The aggregated entries.
    pub entries: Vec<ProfileEntry>,
}

impl FlatProfile {
    /// Builds the profile of a trace. Self time is each span's duration
    /// minus the summed durations of its direct children (clamped at
    /// zero: overlapping grafted subtrees may exceed the parent).
    pub fn of(trace: &Trace) -> FlatProfile {
        let mut child_ns = vec![0u64; trace.spans.len()];
        for span in &trace.spans {
            if let Some(p) = span.parent {
                child_ns[p as usize] += span.dur_ns;
            }
        }
        let mut entries: Vec<ProfileEntry> = Vec::new();
        for span in &trace.spans {
            let self_ns = span.dur_ns.saturating_sub(child_ns[span.id as usize]);
            let alloc = span.alloc.unwrap_or(crate::trace::SpanAlloc {
                allocs: 0,
                bytes: 0,
                peak_live: 0,
            });
            match entries.iter_mut().find(|e| e.name == span.name) {
                Some(e) => {
                    e.count += 1;
                    e.total_ns += span.dur_ns;
                    e.self_ns += self_ns;
                    e.max_ns = e.max_ns.max(span.dur_ns);
                    e.allocs += alloc.allocs;
                    e.alloc_bytes += alloc.bytes;
                    e.peak_live = e.peak_live.max(alloc.peak_live);
                }
                None => entries.push(ProfileEntry {
                    name: span.name.clone(),
                    count: 1,
                    total_ns: span.dur_ns,
                    self_ns,
                    max_ns: span.dur_ns,
                    allocs: alloc.allocs,
                    alloc_bytes: alloc.bytes,
                    peak_live: alloc.peak_live,
                }),
            }
        }
        let mut profile = FlatProfile { entries };
        profile.sort();
        profile
    }

    fn sort(&mut self) {
        self.entries
            .sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.name.cmp(&b.name)));
    }

    /// Merges another profile into this one (entry-wise by name), keeping
    /// the sort order. Used by mule-serve to aggregate per-request traces
    /// into running totals.
    pub fn merge(&mut self, other: &FlatProfile) {
        for e in &other.entries {
            match self.entries.iter_mut().find(|m| m.name == e.name) {
                Some(m) => {
                    m.count += e.count;
                    m.total_ns += e.total_ns;
                    m.self_ns += e.self_ns;
                    m.max_ns = m.max_ns.max(e.max_ns);
                    m.allocs += e.allocs;
                    m.alloc_bytes += e.alloc_bytes;
                    m.peak_live = m.peak_live.max(e.peak_live);
                }
                None => self.entries.push(e.clone()),
            }
        }
        self.sort();
    }

    /// Looks up the entry for `name`.
    pub fn get(&self, name: &str) -> Option<&ProfileEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Summed total milliseconds across the entries whose name passes
    /// `pred` (phase roll-ups, e.g. everything under `chb.`).
    pub fn total_ms_where(&self, pred: impl Fn(&str) -> bool) -> f64 {
        self.entries
            .iter()
            .filter(|e| pred(&e.name))
            .map(|e| e.total_ns as f64 / 1e6)
            .sum()
    }

    /// Renders the profile as an aligned text table (milliseconds with
    /// microsecond precision).
    pub fn to_table(&self) -> String {
        let name_w = self
            .entries
            .iter()
            .map(|e| e.name.len())
            .chain(std::iter::once("span".len()))
            .max()
            .unwrap_or(4);
        let ms = |ns: u64| format!("{:.3}", ns as f64 / 1e6);
        let kb = |bytes: u64| format!("{:.1}", bytes as f64 / 1024.0);
        let mut out = format!(
            "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>10}  {:>12}  {:>12}\n",
            "span", "count", "total_ms", "self_ms", "max_ms", "allocs", "alloc_kb", "peak_live_kb"
        );
        for e in &self.entries {
            out.push_str(&format!(
                "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>10}  {:>12}  {:>12}\n",
                e.name,
                e.count,
                ms(e.total_ns),
                ms(e.self_ns),
                ms(e.max_ns),
                e.allocs,
                kb(e.alloc_bytes),
                kb(e.peak_live)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanRecord;

    fn span(id: u32, parent: Option<u32>, name: &str, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_ns: 0,
            dur_ns,
            counters: Vec::new(),
            alloc: None,
        }
    }

    fn sample_trace() -> Trace {
        Trace {
            spans: vec![
                span(0, None, "root", 100),
                span(1, Some(0), "work", 30),
                span(2, Some(0), "work", 50),
                span(3, Some(2), "leaf", 10),
            ],
            gauges: Vec::new(),
        }
    }

    #[test]
    fn self_time_subtracts_children_and_aggregates_by_name() {
        let p = FlatProfile::of(&sample_trace());
        let work = p.get("work").unwrap();
        assert_eq!(work.count, 2);
        assert_eq!(work.total_ns, 80);
        assert_eq!(work.self_ns, 70); // 30 + (50 - 10)
        assert_eq!(work.max_ns, 50);
        let root = p.get("root").unwrap();
        assert_eq!(root.self_ns, 20); // 100 - 80
        assert_eq!(p.get("leaf").unwrap().self_ns, 10);
    }

    #[test]
    fn merge_is_entrywise_and_table_lists_every_name() {
        let mut a = FlatProfile::of(&sample_trace());
        let b = FlatProfile::of(&sample_trace());
        a.merge(&b);
        assert_eq!(a.get("work").unwrap().count, 4);
        assert_eq!(a.get("work").unwrap().total_ns, 160);
        let table = a.to_table();
        for name in ["span", "root", "work", "leaf", "self_ms"] {
            assert!(table.contains(name), "missing {name} in:\n{table}");
        }
    }

    #[test]
    fn alloc_columns_sum_counts_and_max_peaks() {
        use crate::trace::SpanAlloc;
        let mut trace = sample_trace();
        trace.spans[1].alloc = Some(SpanAlloc {
            allocs: 3,
            bytes: 1000,
            peak_live: 500,
        });
        trace.spans[2].alloc = Some(SpanAlloc {
            allocs: 5,
            bytes: 2000,
            peak_live: 300,
        });
        let mut p = FlatProfile::of(&trace);
        let work = p.get("work").unwrap();
        assert_eq!(work.allocs, 8);
        assert_eq!(work.alloc_bytes, 3000);
        assert_eq!(work.peak_live, 500);
        // Disarmed spans contribute zeros.
        assert_eq!(p.get("root").unwrap().allocs, 0);
        let other = p.clone();
        p.merge(&other);
        let work = p.get("work").unwrap();
        assert_eq!(work.allocs, 16);
        assert_eq!(work.peak_live, 500);
        let table = p.to_table();
        for col in ["allocs", "alloc_kb", "peak_live_kb"] {
            assert!(table.contains(col), "missing {col} in:\n{table}");
        }
    }

    #[test]
    fn phase_rollup_sums_matching_entries() {
        let p = FlatProfile::of(&sample_trace());
        let ms = p.total_ms_where(|n| n == "work" || n == "leaf");
        assert!((ms - 90.0 / 1e6).abs() < 1e-12);
    }
}
