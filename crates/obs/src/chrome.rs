//! Chrome `trace_event` JSON exporter.
//!
//! Emits the subset of the [Trace Event Format] that `about:tracing` and
//! <https://ui.perfetto.dev> load: one complete (`"ph":"X"`) event per
//! span with microsecond timestamps, counters carried in `args`, plus a
//! process-name metadata record.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::trace::Trace;

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds → microseconds with fixed three-decimal rendering, so the
/// output is stable and never switches to exponent notation.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Appends one trace's events (spans, heap tracks, gauges) under the
/// given Chrome `tid`, so several traces can share one file as separate
/// tracks.
fn push_trace_events(events: &mut Vec<String>, trace: &Trace, tid: u32) {
    for span in &trace.spans {
        let mut args = String::new();
        args.push_str(&format!("\"seq\":{}", span.id));
        for (name, value) in &span.counters {
            args.push_str(&format!(",\"{}\":{}", escape(name), value));
        }
        if let Some(alloc) = &span.alloc {
            args.push_str(&format!(
                ",\"allocs\":{},\"alloc_bytes\":{}",
                alloc.allocs, alloc.bytes
            ));
        }
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"mule\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{tid},\"args\":{{{}}}}}",
            escape(&span.name),
            micros(span.start_ns),
            micros(span.dur_ns),
            args
        ));
        // One counter sample per attributed span renders as a heap track
        // (the span's live-bytes high-water mark) in Perfetto.
        if let Some(alloc) = &span.alloc {
            events.push(format!(
                "{{\"name\":\"heap_peak_live_bytes\",\"ph\":\"C\",\"ts\":{},\
                 \"pid\":1,\"tid\":{tid},\"args\":{{\"bytes\":{}}}}}",
                micros(span.start_ns),
                alloc.peak_live
            ));
        }
    }
    for (name, value) in &trace.gauges {
        events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":0.000,\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"value\":{}}}}}",
            escape(name),
            value
        ));
    }
}

/// Wraps rendered events in the JSON-object trace-file envelope.
fn envelope(events: Vec<String>) -> String {
    format!(
        "{{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n    {}\n  ]\n}}\n",
        events.join(",\n    ")
    )
}

/// Serialises a trace as Chrome `trace_event` JSON. Drag the file into
/// `about:tracing`, or open it at <https://ui.perfetto.dev>.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut events = Vec::with_capacity(trace.spans.len() + 1);
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
         \"args\":{\"name\":\"wmdm-patrol\"}}"
            .to_string(),
    );
    push_trace_events(&mut events, trace, 1);
    envelope(events)
}

/// Serialises several labelled traces into **one** Chrome trace file,
/// each trace on its own track (`tid` = position + 1, named by its
/// label via `thread_name` metadata). mule-serve's `GET /debug/traces`
/// uses this to ship the recent sampled-trace ring as a single
/// Perfetto-loadable document.
pub fn chrome_traces_json<'a>(traces: impl IntoIterator<Item = (&'a str, &'a Trace)>) -> String {
    let mut events = vec![
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
         \"args\":{\"name\":\"wmdm-patrol\"}}"
            .to_string(),
    ];
    for (i, (label, trace)) in traces.into_iter().enumerate() {
        let tid = (i + 1) as u32;
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(label)
        ));
        push_trace_events(&mut events, trace, tid);
    }
    envelope(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanRecord;

    #[test]
    fn exporter_emits_complete_events_with_counters() {
        let trace = Trace {
            spans: vec![SpanRecord {
                id: 0,
                parent: None,
                name: "chb.two_opt".to_string(),
                start_ns: 1_234_567,
                dur_ns: 89_000,
                counters: vec![("moves".to_string(), 7)],
                alloc: None,
            }],
            gauges: vec![("targets".to_string(), 50)],
        };
        let json = chrome_trace_json(&trace);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"chb.two_opt\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1234.567"));
        assert!(json.contains("\"dur\":89.000"));
        assert!(json.contains("\"moves\":7"));
        assert!(json.contains("\"ph\":\"C\"")); // the gauge counter event
        assert!(json.contains("\"ph\":\"M\"")); // the metadata record
    }

    #[test]
    fn attributed_spans_emit_alloc_args_and_a_heap_track() {
        let trace = Trace {
            spans: vec![SpanRecord {
                id: 0,
                parent: None,
                name: "chb.candidates".to_string(),
                start_ns: 5_000,
                dur_ns: 1_000,
                counters: Vec::new(),
                alloc: Some(crate::trace::SpanAlloc {
                    allocs: 11,
                    bytes: 4096,
                    peak_live: 8192,
                }),
            }],
            gauges: Vec::new(),
        };
        let json = chrome_trace_json(&trace);
        assert!(json.contains("\"allocs\":11"));
        assert!(json.contains("\"alloc_bytes\":4096"));
        assert!(json.contains("\"name\":\"heap_peak_live_bytes\",\"ph\":\"C\",\"ts\":5.000"));
        assert!(json.contains("\"args\":{\"bytes\":8192}"));
    }

    #[test]
    fn names_are_json_escaped() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn micros_renders_fixed_decimals() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_000_001), "1000.001");
    }

    #[test]
    fn multi_trace_export_separates_traces_by_tid() {
        let trace_for = |name: &str| Trace {
            spans: vec![SpanRecord {
                id: 0,
                parent: None,
                name: name.to_string(),
                start_ns: 1_000,
                dur_ns: 500,
                counters: Vec::new(),
                alloc: None,
            }],
            gauges: Vec::new(),
        };
        let a = trace_for("request");
        let b = trace_for("request");
        let json = chrome_traces_json([("trace 9a1f", &a), ("trace 0b2e", &b)]);
        // Each trace gets its own named track.
        assert!(json.contains("\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1"));
        assert!(json.contains("\"args\":{\"name\":\"trace 9a1f\"}"));
        assert!(json.contains("\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2"));
        assert!(json.contains("\"args\":{\"name\":\"trace 0b2e\"}"));
        // Span events land on their trace's tid.
        assert!(json.contains("\"ph\":\"X\",\"ts\":1.000,\"dur\":0.500,\"pid\":1,\"tid\":1"));
        assert!(json.contains("\"ph\":\"X\",\"ts\":1.000,\"dur\":0.500,\"pid\":1,\"tid\":2"));
    }

    #[test]
    fn multi_trace_export_of_nothing_is_still_a_valid_trace_file() {
        let json = chrome_traces_json(std::iter::empty());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"M\""));
    }
}
