//! Typed process-wide metrics: lock-free counters and gauges.
//!
//! These are the *aggregate* complement to the per-trace span counters:
//! cheap enough to live in `static`s and bump from any thread, and
//! rendered by [`crate::prom::PromText`] for `/metrics`-style endpoints.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero (usable in `static` items).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move in both directions.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero (usable in `static` items).
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_move_both_ways() {
        static HITS: Counter = Counter::new();
        static DEPTH: Gauge = Gauge::new();
        HITS.inc();
        HITS.add(4);
        assert_eq!(HITS.get(), 5);
        DEPTH.set(3);
        DEPTH.add(-5);
        assert_eq!(DEPTH.get(), -2);
    }
}
