//! # mule-obs
//!
//! Structured observability for the whole workspace: deterministic tracing
//! spans, typed counters/gauges, and exporters — with **zero dependencies**
//! so every other crate (down to `mule-road` at the bottom of the graph)
//! can instrument itself without cycles.
//!
//! ## Span model
//!
//! Tracing is **thread-local and opt-in**. A thread owns at most one open
//! trace; instrumented code calls [`span`] / [`add`] unconditionally, and
//! when no trace is active those calls are a flag check and nothing else.
//! When a trace *is* active:
//!
//! * [`span`] opens a span as a child of the innermost open span and
//!   returns a guard; dropping the guard closes it. Span **ids are
//!   assigned in open order**, so the id doubles as the monotonic
//!   sequence number.
//! * [`add`] accumulates a named integer counter on the innermost open
//!   span (move counts, settled nodes, events dispatched, …).
//! * [`gauge`] records a point-in-time value on the trace itself.
//!
//! ## Determinism contract
//!
//! The resulting [`Trace`] separates *shape* from *time*. The shape —
//! span names, parentage, open order and counter values — is a pure
//! function of the traced computation, so two runs of the same seed
//! produce byte-identical [`Trace::shape`] renderings. Wall-clock start
//! and duration are carried alongside and are **never** part of the
//! shape; golden tests pin shapes, never durations. See
//! `docs/OBSERVABILITY.md`.
//!
//! ## Exporters
//!
//! * [`chrome_trace_json`] / [`chrome_traces_json`] — Chrome
//!   `trace_event` JSON, loadable in `about:tracing` or
//!   <https://ui.perfetto.dev> (the latter packs several traces into one
//!   file as separate tracks).
//! * [`FlatProfile`] — per-span-name count / total / self / max
//!   aggregation, renderable as an aligned text table.
//! * [`prom::PromText`] — Prometheus text exposition (version 0.0.4)
//!   writer used by mule-serve's `/metrics`.
//!
//! ## Live telemetry
//!
//! * [`sampler::sample_keep`] — deterministic head-based trace sampling:
//!   keep/drop is a pure SplitMix64 function of `(trace_id, rate)`.
//! * [`ring::Ring`] — fixed-capacity generation-counted stores backing
//!   mule-serve's `/debug/*` endpoints.
//! * [`log`] — process-wide structured JSON-lines event log with
//!   severity filtering, monotonic sequencing and trace-id correlation.
//! * [`slo`] — rolling-window SLO burn-rate tracking exposed on
//!   `/metrics` as `mule_slo_*` gauges.
//!
//! ## Memory
//!
//! The crate also installs the workspace-wide counting allocator
//! ([`alloc::CountingAlloc`]): inert (one relaxed atomic load per
//! allocator call) until [`alloc::arm`]ed, after which allocation
//! activity is tallied globally, per thread, and — when a trace is also
//! active — attributed to the innermost open span ([`SpanAlloc`]).
//! Allocation *counts* are deterministic and pinned like span shape;
//! bytes, peaks and RSS are never pinned. See `docs/OBSERVABILITY.md`,
//! "Memory".

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod alloc;
pub mod chrome;
pub mod log;
pub mod metric;
pub mod profile;
pub mod prom;
pub mod ring;
pub mod sampler;
pub mod slo;
pub mod trace;

pub use chrome::{chrome_trace_json, chrome_traces_json};
pub use metric::{Counter, Gauge};
pub use profile::{FlatProfile, ProfileEntry};
pub use ring::Ring;
pub use sampler::sample_keep;
pub use slo::{SloReport, SloSpec, SloTracker};
pub use trace::{SpanAlloc, SpanRecord, Trace};

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic token distinguishing collector generations, so a [`SpanGuard`]
/// that outlives its collector (e.g. across a [`capture`] boundary) closes
/// nothing instead of closing an unrelated span.
static COLLECTOR_TOKEN: AtomicU64 = AtomicU64::new(1);

struct Collector {
    token: u64,
    epoch: Instant,
    spans: Vec<SpanRecord>,
    stack: Vec<u32>,
    /// Allocation windows, parallel to `stack` (entry `i` belongs to
    /// span `stack[i]`); `None` when the allocator was disarmed at the
    /// span's open.
    alloc_windows: Vec<Option<alloc::SpanWindow>>,
    gauges: Vec<(String, i64)>,
}

impl Collector {
    fn new() -> Self {
        Collector {
            token: COLLECTOR_TOKEN.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            spans: Vec::new(),
            stack: Vec::new(),
            alloc_windows: Vec::new(),
            gauges: Vec::new(),
        }
    }

    /// Closes the allocation windows of every span at stack depth `pos`
    /// and above, innermost first (windows restore the enclosing
    /// window's peak, so LIFO order is load-bearing).
    fn close_windows_from(&mut self, pos: usize) {
        for i in (pos..self.stack.len()).rev() {
            if let Some(window) = self.alloc_windows[i].take() {
                let span = self.stack[i] as usize;
                self.spans[span].alloc = Some(alloc::close_window(window));
            }
        }
    }

    fn into_trace(self) -> Trace {
        Trace {
            spans: self.spans,
            gauges: self.gauges,
        }
    }
}

thread_local! {
    /// Fast-path flag: `true` iff a collector is installed on this thread.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Returns `true` when a trace is being recorded on this thread.
#[inline]
pub fn trace_active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Starts recording a trace on this thread. Any trace already active on
/// the thread is discarded (threads own at most one trace; use
/// [`capture`] for nesting).
pub fn trace_begin() {
    COLLECTOR.with_borrow_mut(|c| *c = Some(Collector::new()));
    ACTIVE.with(|a| a.set(true));
}

/// Stops recording and returns the trace, or `None` when none was active.
/// Spans still open when the trace ends are kept with the duration they
/// had accumulated so far.
pub fn trace_end() -> Option<Trace> {
    ACTIVE.with(|a| a.set(false));
    COLLECTOR.with_borrow_mut(|c| c.take()).map(|mut col| {
        let now = col.epoch.elapsed().as_nanos() as u64;
        col.close_windows_from(0);
        for &id in &col.stack {
            let rec = &mut col.spans[id as usize];
            rec.dur_ns = now.saturating_sub(rec.start_ns);
        }
        col.stack.clear();
        col.alloc_windows.clear();
        col.into_trace()
    })
}

/// Runs `f` under a fresh trace and returns its result together with the
/// recorded trace. Any trace already active on the calling thread is
/// suspended for the duration and restored afterwards, so `capture` is
/// safe to use on worker threads and inside already-traced code.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Trace) {
    let saved = COLLECTOR.with_borrow_mut(|c| c.take());
    let was_active = trace_active();
    trace_begin();
    let value = f();
    let trace = trace_end().unwrap_or_default();
    COLLECTOR.with_borrow_mut(|c| *c = saved);
    ACTIVE.with(|a| a.set(was_active));
    (value, trace)
}

/// A guard holding a span open; dropping it closes the span. Returned by
/// [`span`] / [`span_owned`]; inert when no trace was active at open time.
#[must_use = "dropping the guard closes the span; bind it to a named variable"]
pub struct SpanGuard {
    /// `(collector token, span id)` — `None` when tracing was off.
    slot: Option<(u64, u32)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((token, id)) = self.slot {
            close_span(token, id);
        }
    }
}

fn open_span(name: String) -> SpanGuard {
    let slot = COLLECTOR.with_borrow_mut(|c| {
        let col = c.as_mut()?;
        let id = col.spans.len() as u32;
        let parent = col.stack.last().copied();
        col.spans.push(SpanRecord {
            id,
            parent,
            name,
            start_ns: col.epoch.elapsed().as_nanos() as u64,
            dur_ns: 0,
            counters: Vec::new(),
            alloc: None,
        });
        col.stack.push(id);
        col.alloc_windows.push(alloc::open_window());
        Some((col.token, id))
    });
    SpanGuard { slot }
}

fn close_span(token: u64, id: u32) {
    COLLECTOR.with_borrow_mut(|c| {
        if let Some(col) = c.as_mut() {
            if col.token != token {
                return; // guard outlived its collector; nothing to close
            }
            let now = col.epoch.elapsed().as_nanos() as u64;
            if let Some(pos) = col.stack.iter().rposition(|&s| s == id) {
                col.close_windows_from(pos);
                col.stack.truncate(pos);
                col.alloc_windows.truncate(pos);
            }
            let rec = &mut col.spans[id as usize];
            rec.dur_ns = now.saturating_sub(rec.start_ns);
        }
    });
}

/// Opens a span named `name` under the innermost open span. A no-op
/// (one thread-local flag check) when no trace is active on this thread.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !trace_active() {
        return SpanGuard { slot: None };
    }
    open_span(name.to_string())
}

/// [`span`] with a runtime-built name (planner names, request routes, …).
/// The name is only materialised when a trace is active.
#[inline]
pub fn span_owned(name: impl FnOnce() -> String) -> SpanGuard {
    if !trace_active() {
        return SpanGuard { slot: None };
    }
    open_span(name())
}

/// Adds `delta` to the named counter of the innermost open span. Counters
/// are part of the deterministic trace shape: only record values that are
/// pure functions of the computation (move counts, settled nodes — never
/// times). A no-op when no trace or no span is open.
#[inline]
pub fn add(name: &'static str, delta: u64) {
    if !trace_active() {
        return;
    }
    COLLECTOR.with_borrow_mut(|c| {
        if let Some(col) = c.as_mut() {
            if let Some(&top) = col.stack.last() {
                let counters = &mut col.spans[top as usize].counters;
                match counters.iter_mut().find(|(n, _)| n == name) {
                    Some((_, v)) => *v += delta,
                    None => counters.push((name.to_string(), delta)),
                }
            }
        }
    });
}

/// Grafts `child` — a trace recorded elsewhere, typically by [`capture`]
/// on a worker thread — into the trace being recorded on this thread,
/// under the innermost open span. Grafting results in a deterministic
/// order (task-index order, not completion order) keeps the combined
/// shape deterministic for any worker count. A no-op when no trace is
/// active.
pub fn graft(child: Trace) {
    if !trace_active() {
        return;
    }
    COLLECTOR.with_borrow_mut(|c| {
        if let Some(col) = c.as_mut() {
            let parent = col.stack.last().copied();
            trace::graft_into(&mut col.spans, &mut col.gauges, child, parent);
        }
    });
}

/// Records a trace-level gauge (last write wins). Like counters, gauge
/// values are part of the deterministic shape.
#[inline]
pub fn gauge(name: &'static str, value: i64) {
    if !trace_active() {
        return;
    }
    COLLECTOR.with_borrow_mut(|c| {
        if let Some(col) = c.as_mut() {
            match col.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, v)) => *v = value,
                None => col.gauges.push((name.to_string(), value)),
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced(f: impl FnOnce()) -> Trace {
        capture(f).1
    }

    #[test]
    fn spans_nest_and_ids_follow_open_order() {
        let trace = traced(|| {
            let _a = span("a");
            {
                let _b = span("b");
                add("hits", 2);
                add("hits", 3);
            }
            let _c = span("c");
        });
        assert_eq!(trace.spans.len(), 3);
        assert_eq!(trace.spans[0].name, "a");
        assert_eq!(trace.spans[0].parent, None);
        assert_eq!(trace.spans[1].name, "b");
        assert_eq!(trace.spans[1].parent, Some(0));
        assert_eq!(trace.spans[1].counters, vec![("hits".to_string(), 5)]);
        assert_eq!(trace.spans[2].name, "c");
        assert_eq!(trace.spans[2].parent, Some(0));
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        assert!(!trace_active());
        let _s = span("ignored");
        add("ignored", 1);
        gauge("ignored", 1);
        assert!(trace_end().is_none());
    }

    #[test]
    fn shape_is_identical_across_runs_despite_timing() {
        let run = || {
            traced(|| {
                let _root = span("root");
                for _ in 0..3 {
                    let _child = span("child");
                    add("work", 7);
                }
                gauge("targets", 42);
            })
        };
        assert_eq!(run().shape(), run().shape());
    }

    #[test]
    fn capture_restores_the_outer_trace() {
        trace_begin();
        let _outer = span("outer");
        let (_, inner) = capture(|| {
            let _s = span("inner");
        });
        assert!(trace_active());
        add("after", 1);
        let outer_trace = {
            drop(_outer);
            trace_end().unwrap()
        };
        assert_eq!(inner.spans.len(), 1);
        assert_eq!(inner.spans[0].name, "inner");
        assert_eq!(outer_trace.spans.len(), 1);
        assert_eq!(outer_trace.spans[0].counters[0].0, "after");
    }

    #[test]
    fn open_spans_are_closed_when_the_trace_ends() {
        trace_begin();
        let guard = span("left-open");
        let trace = trace_end().unwrap();
        drop(guard); // must not panic or corrupt the next trace
        assert_eq!(trace.spans.len(), 1);
        let next = traced(|| {
            let _s = span("fresh");
        });
        assert_eq!(next.spans[0].name, "fresh");
    }

    #[test]
    fn disarmed_traces_carry_no_alloc_attribution() {
        let _guard = alloc::tests::ARM_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let trace = traced(|| {
            let _s = span("plain");
            let _v: Vec<u8> = Vec::with_capacity(4096);
        });
        assert_eq!(trace.spans[0].alloc, None);
        assert_eq!(trace.alloc_shape(), "plain\n");
    }

    #[test]
    fn armed_traces_attribute_allocation_counts_to_spans() {
        alloc::tests::armed_section(|| {
            let trace = traced(|| {
                let _root = span("root");
                let outer: Vec<u64> = Vec::with_capacity(1024);
                {
                    let _child = span("child");
                    let inner: Vec<u64> = Vec::with_capacity(512);
                    drop(inner);
                }
                drop(outer);
            });
            let root = trace.spans[0].alloc.expect("root span attributed");
            let child = trace.spans[1].alloc.expect("child span attributed");
            assert!(child.allocs >= 1, "child saw its Vec allocation");
            assert!(root.allocs >= child.allocs, "parent includes children");
            assert!(root.bytes >= child.bytes + 1024 * 8);
            assert!(child.peak_live >= 512 * 8);
            assert!(root.peak_live >= child.peak_live);
            assert!(trace.alloc_shape().contains("child allocs="));
        });
    }

    #[test]
    fn alloc_counts_are_identical_run_to_run() {
        alloc::tests::armed_section(|| {
            let run = || {
                traced(|| {
                    let _root = span("root");
                    for _ in 0..3 {
                        let _child = span("child");
                        let v: Vec<u64> = (0..200).collect();
                        drop(v);
                    }
                })
                .alloc_shape()
            };
            let first = run();
            assert_eq!(first, run(), "per-span alloc counts drifted");
            assert!(first.contains("allocs="));
        });
    }

    #[test]
    fn spans_left_open_at_trace_end_still_get_attribution() {
        alloc::tests::armed_section(|| {
            trace_begin();
            let guard = span("left-open");
            let v: Vec<u8> = vec![7; 2048];
            let trace = trace_end().unwrap();
            drop(guard);
            drop(v);
            let alloc = trace.spans[0].alloc.expect("open span finalised");
            assert!(alloc.allocs >= 1);
            assert!(alloc.bytes >= 2048);
        });
    }

    #[test]
    fn gauges_last_write_wins() {
        let trace = traced(|| {
            gauge("g", 1);
            gauge("g", 9);
        });
        assert_eq!(trace.gauges, vec![("g".to_string(), 9)]);
    }
}
