//! Deterministic head-based trace sampling.
//!
//! The keep/drop decision is a **pure function** of `(trace_id, rate)`:
//! the trace id runs through one SplitMix64 finaliser round, the top 53
//! bits become a uniform draw in `[0, 1)`, and the trace is kept iff the
//! draw falls below the rate. No process state, no clocks, no RNG stream
//! — the same `(trace_id, rate)` pair answers the same way on every run,
//! every worker thread, and every machine, which is what lets a serving
//! replay (same admission order, same seed) retain the exact same set of
//! traces. See `docs/DETERMINISM.md`, "Trace sampling".
//!
//! Tail-based promotion (always keeping slow and error traces) is the
//! caller's OR on top of this head decision; mule-serve applies it in
//! `handle_connection`.

/// Whether the trace with the given id should be kept at the given
/// sampling rate. Pure: same `(trace_id, rate)`, same answer, everywhere.
///
/// Edge cases are exact, not probabilistic: `rate <= 0` never keeps and
/// `rate >= 1` always keeps (NaN rates behave as 0 — a misparsed rate
/// must fail closed, not sample noisily).
pub fn sample_keep(trace_id: u64, rate: f64) -> bool {
    if rate.is_nan() || rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    // SplitMix64 finaliser: the same mixing the serve trace-id generator
    // and mule-fault's decision draws use. One round suffices — the input
    // is already well-mixed when it is a serve trace token, and the
    // finaliser's avalanche covers sequential ids too.
    let mut z = trace_id.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // Top 53 bits → uniform in [0, 1); every f64 in that range is exact.
    let draw = (z >> 11) as f64 / (1u64 << 53) as f64;
    draw < rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_is_a_pure_function_of_id_and_rate() {
        for id in [0u64, 1, 42, u64::MAX, 0x9e3779b97f4a7c15] {
            for rate in [0.01, 0.25, 0.5, 0.99] {
                let first = sample_keep(id, rate);
                for _ in 0..10 {
                    assert_eq!(sample_keep(id, rate), first, "id={id} rate={rate}");
                }
            }
        }
    }

    #[test]
    fn decision_is_identical_across_threads() {
        let ids: Vec<u64> = (0..1000).collect();
        let baseline: Vec<bool> = ids.iter().map(|&id| sample_keep(id, 0.3)).collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let ids = ids.clone();
                std::thread::spawn(move || {
                    ids.iter()
                        .map(|&id| sample_keep(id, 0.3))
                        .collect::<Vec<bool>>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), baseline);
        }
    }

    #[test]
    fn rate_zero_never_keeps_and_rate_one_always_keeps() {
        for id in 0..10_000u64 {
            assert!(!sample_keep(id, 0.0), "rate 0 kept id {id}");
            assert!(sample_keep(id, 1.0), "rate 1 dropped id {id}");
        }
        // Out-of-range and non-finite rates clamp to the edges.
        assert!(!sample_keep(7, -0.5));
        assert!(sample_keep(7, 1.5));
        assert!(!sample_keep(7, f64::NAN), "NaN must fail closed");
    }

    #[test]
    fn keep_fraction_tracks_the_rate() {
        let n = 100_000u64;
        for rate in [0.05, 0.5, 0.9] {
            let kept = (0..n).filter(|&id| sample_keep(id, rate)).count() as f64;
            let fraction = kept / n as f64;
            assert!(
                (fraction - rate).abs() < 0.01,
                "rate {rate}: kept fraction {fraction}"
            );
        }
    }

    #[test]
    fn sequential_ids_are_decorrelated() {
        // Runs of identical decisions on sequential ids should stay short
        // at rate 0.5 — a weak mixer would keep long blocks together.
        let mut longest = 0usize;
        let mut run = 0usize;
        let mut last = None;
        for id in 0..10_000u64 {
            let keep = sample_keep(id, 0.5);
            if Some(keep) == last {
                run += 1;
            } else {
                run = 1;
                last = Some(keep);
            }
            longest = longest.max(run);
        }
        assert!(
            longest < 30,
            "suspicious run of {longest} identical decisions"
        );
    }
}
