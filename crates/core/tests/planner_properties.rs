//! Property-based tests of the planners' structural invariants.

use mule_workload::{ScenarioConfig, WeightSpec};
use patrol_core::baselines::{ChbPlanner, RandomPlanner, SweepPlanner};
use patrol_core::{BTctp, BreakEdgePolicy, Planner, RwTctp, WTctp};
use proptest::prelude::*;

fn weighted_config(
    seed: u64,
    targets: usize,
    mules: usize,
    vips: usize,
    weight: u32,
    recharge: bool,
) -> ScenarioConfig {
    ScenarioConfig::paper_default()
        .with_targets(targets)
        .with_mules(mules)
        .with_seed(seed)
        .with_weights(if vips > 0 {
            WeightSpec::UniformVips {
                count: vips,
                weight,
            }
        } else {
            WeightSpec::AllNormal
        })
        .with_recharge_station(recharge)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every planner produces one itinerary per mule, each a closed walk
    /// over valid node ids with finite positive length (or an idle walk).
    #[test]
    fn all_planners_produce_structurally_valid_plans(
        seed in 0u64..10_000,
        targets in 2usize..20,
        mules in 1usize..6,
    ) {
        let scenario = weighted_config(seed, targets, mules, 0, 1, false).generate();
        let planners: Vec<Box<dyn Planner>> = vec![
            Box::new(BTctp::new()),
            Box::new(ChbPlanner::new()),
            Box::new(SweepPlanner::new()),
            Box::new(RandomPlanner::with_rounds(4)),
            Box::new(WTctp::new(BreakEdgePolicy::ShortestLength)),
        ];
        let valid_ids: std::collections::HashSet<usize> =
            scenario.field().nodes().iter().map(|n| n.id.index()).collect();
        for planner in planners {
            let plan = planner.plan(&scenario).unwrap();
            prop_assert_eq!(plan.mule_count(), mules, "{}", plan.planner_name);
            for it in &plan.itineraries {
                prop_assert!(it.cycle_length().is_finite());
                prop_assert!(it.entry_offset_m >= 0.0);
                for w in &it.cycle {
                    prop_assert!(valid_ids.contains(&w.node.index()));
                    prop_assert!(w.position.is_finite());
                }
            }
        }
    }

    /// The WPP produced by the patrolling rule preserves the undirected edge
    /// multiset of the constructed walk: the rule only fixes the traversal
    /// order, it never adds or removes path segments.
    #[test]
    fn patrol_rule_preserves_wpp_edge_multiset(
        seed in 0u64..10_000,
        targets in 5usize..18,
        vips in 1usize..4,
        weight in 2u32..5,
    ) {
        let scenario = weighted_config(seed, targets, 1, vips, weight, false).generate();
        for policy in BreakEdgePolicy::ALL {
            let wpp = WTctp::new(policy).build_wpp_waypoints(&scenario).unwrap();
            // Total node occurrences = Σ weights.
            let expected: usize = scenario
                .field()
                .patrolled_nodes()
                .iter()
                .map(|n| n.weight.value() as usize)
                .sum();
            prop_assert_eq!(wpp.len(), expected);
        }
    }

    /// B-TCTP deployments assign each mule a distinct start point and the
    /// set of entry offsets is invariant under a permutation of the mule
    /// start positions (the greedy matching is symmetric in the fleet).
    #[test]
    fn btctp_assigns_distinct_start_points(
        seed in 0u64..10_000,
        targets in 3usize..20,
        mules in 2usize..7,
    ) {
        let scenario = weighted_config(seed, targets, mules, 0, 1, false).generate();
        let plan = BTctp::new().plan(&scenario).unwrap();
        let mut offsets: Vec<u64> = plan
            .itineraries
            .iter()
            .map(|i| (i.entry_offset_m * 1_000.0).round() as u64)
            .collect();
        offsets.sort_unstable();
        offsets.dedup();
        prop_assert_eq!(offsets.len(), mules, "distinct start points per mule");
    }

    /// RW-TCTP invariants: the WRP contains the station exactly once, is at
    /// least as long as the WPP, and the encoded super-cycle visits the
    /// station exactly once per recharge period regardless of the battery.
    #[test]
    fn rwtctp_schedule_invariants(
        seed in 0u64..10_000,
        targets in 4usize..15,
        vips in 0usize..3,
        battery in 20_000.0f64..400_000.0,
    ) {
        let scenario = weighted_config(seed, targets, 2, vips, 3, true).generate();
        let energy = mule_energy::EnergyModel {
            initial_energy_j: battery,
            ..mule_energy::EnergyModel::paper_default()
        };
        let planner = RwTctp::with_energy(BreakEdgePolicy::ShortestLength, energy);
        let schedule = planner.build_schedule(&scenario).unwrap();
        let station = scenario.field().recharge_station().unwrap().id;
        prop_assert_eq!(
            schedule.wrp.iter().filter(|w| w.node == station).count(),
            1
        );
        prop_assert!(schedule.wrp_length() >= schedule.wpp_length() - 1e-9);
        prop_assert!(schedule.rounds.rounds_per_charge >= 1);

        let plan = planner.plan(&scenario).unwrap();
        prop_assert_eq!(plan.itineraries[0].visits_per_round(station), 1);
    }

    /// Sweep partitions the targets: the union of the per-mule covered
    /// target sets equals the target set and the sets are pairwise disjoint.
    #[test]
    fn sweep_groups_partition_targets(
        seed in 0u64..10_000,
        targets in 1usize..25,
        mules in 1usize..6,
    ) {
        let scenario = weighted_config(seed, targets, mules, 0, 1, false).generate();
        let plan = SweepPlanner::new().plan(&scenario).unwrap();
        let sink = scenario.field().sink().unwrap().id;
        let mut seen = std::collections::HashMap::new();
        for it in &plan.itineraries {
            for node in it.covered_nodes() {
                if node != sink {
                    *seen.entry(node).or_insert(0usize) += 1;
                }
            }
        }
        for node in scenario.field().patrolled_nodes() {
            if node.id != sink {
                prop_assert_eq!(seen.get(&node.id), Some(&1), "target {} owned once", node.id);
            }
        }
    }
}
