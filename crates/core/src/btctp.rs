//! B-TCTP: the Basic Target-Coverage Target-Patrolling planner (paper §II).
//!
//! Phase 1 — *path construction*: every mule builds the same CHB Hamiltonian
//! circuit over all patrolled nodes (targets + sink) and rotates it to start
//! at the most north node.
//!
//! Phase 2 — *patrolling strategy*: the circuit is partitioned into `n`
//! equal-length segments whose heads are the start points; each mule moves
//! to its assigned start point and then patrols the circuit counter-
//! clockwise forever. Because consecutive mules stay `|P|/n` apart, every
//! target is visited every `|P| / (n · v)` seconds with zero variance — the
//! property Figures 7 and 8 demonstrate.

use crate::deployment::assign_start_points;
use crate::hamiltonian::SharedCircuit;
use crate::plan::{MuleItinerary, PatrolPlan, PlanError};
use crate::planner::{validate_common, Planner};
use mule_graph::ChbConfig;
use mule_workload::Scenario;

/// The B-TCTP planner.
#[derive(Debug, Clone)]
pub struct BTctp {
    /// Configuration of the underlying Hamiltonian-circuit construction.
    pub chb: ChbConfig,
    /// When `false`, the start-point spreading (phase 2) is skipped and
    /// every mule enters the circuit at the point closest to its own start
    /// position. This degenerates B-TCTP into the CHB baseline and exists
    /// for the `ablation_spread` bench.
    pub spread_start_points: bool,
}

impl Default for BTctp {
    /// The paper's B-TCTP (spreading enabled) — identical to
    /// [`BTctp::new`].
    fn default() -> Self {
        BTctp::new()
    }
}

impl BTctp {
    /// B-TCTP as described in the paper (spreading enabled).
    pub fn new() -> Self {
        BTctp {
            chb: ChbConfig::default(),
            spread_start_points: true,
        }
    }

    /// The ablation variant without start-point spreading.
    pub fn without_spreading() -> Self {
        BTctp {
            chb: ChbConfig::default(),
            spread_start_points: false,
        }
    }

    /// Builder-style override of the circuit-construction configuration
    /// (pass budgets and exact/candidate-list search mode).
    pub fn with_chb(mut self, chb: ChbConfig) -> Self {
        self.chb = chb;
        self
    }
}

impl Planner for BTctp {
    fn name(&self) -> &'static str {
        "B-TCTP"
    }

    fn plan(&self, scenario: &Scenario) -> Result<PatrolPlan, PlanError> {
        let _span = mule_obs::span_owned(|| format!("planner.{}", self.name()));
        validate_common(scenario)?;
        let circuit = SharedCircuit::build(scenario, &self.chb).ok_or(PlanError::NoTargets)?;
        let path = mule_geom::Polyline::closed(circuit.positions());

        let itineraries = if self.spread_start_points {
            let deployments = assign_start_points(&path, scenario.mule_starts());
            scenario
                .mule_starts()
                .iter()
                .enumerate()
                .map(|(m, start)| {
                    MuleItinerary::new(m, *start, circuit.waypoints.clone())
                        .with_entry_offset(deployments[m].entry_offset_m)
                })
                .collect()
        } else {
            // CHB-style: every mule just enters the circuit at the waypoint
            // nearest its own start position.
            scenario
                .mule_starts()
                .iter()
                .enumerate()
                .map(|(m, start)| {
                    let offset = nearest_vertex_offset(&path, start);
                    MuleItinerary::new(m, *start, circuit.waypoints.clone())
                        .with_entry_offset(offset)
                })
                .collect()
        };

        Ok(PatrolPlan::new(self.name(), itineraries).with_metric_geometry(scenario.metric()))
    }
}

/// Arc-length offset of the path vertex closest to `point`.
pub(crate) fn nearest_vertex_offset(path: &mule_geom::Polyline, point: &mule_geom::Point) -> f64 {
    let mut best = (0usize, f64::INFINITY);
    for (i, p) in path.points().iter().enumerate() {
        let d = p.distance(point);
        if d < best.1 {
            best = (i, d);
        }
    }
    path.arc_length_to_vertex(best.0).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_workload::ScenarioConfig;

    fn scenario(seed: u64) -> Scenario {
        ScenarioConfig::paper_default().with_seed(seed).generate()
    }

    #[test]
    fn plan_covers_all_patrolled_nodes_once_per_round() {
        let s = scenario(3);
        let plan = BTctp::new().plan(&s).unwrap();
        assert_eq!(plan.mule_count(), 4);
        for it in &plan.itineraries {
            assert_eq!(it.cycle.len(), s.patrolled_positions().len());
            for id in s.patrolled_ids() {
                assert_eq!(it.visits_per_round(id), 1, "node {id} visited once");
            }
        }
    }

    #[test]
    fn all_mules_share_the_same_circuit_with_distinct_offsets() {
        let s = scenario(5);
        let plan = BTctp::new().plan(&s).unwrap();
        let reference = &plan.itineraries[0].cycle;
        let mut offsets = Vec::new();
        for it in &plan.itineraries {
            assert_eq!(&it.cycle, reference, "identical shared circuit");
            offsets.push(it.entry_offset_m);
        }
        offsets.sort_by(|a, b| a.total_cmp(b));
        // Equal spacing |P|/n between consecutive entry offsets.
        let total = plan.itineraries[0].cycle_length();
        let expected_gap = total / plan.mule_count() as f64;
        for w in offsets.windows(2) {
            assert!((w[1] - w[0] - expected_gap).abs() < 1e-6);
        }
    }

    #[test]
    fn spreading_disabled_bunches_mules_at_the_sink_entry() {
        let s = scenario(7);
        let plan = BTctp::without_spreading().plan(&s).unwrap();
        let first = plan.itineraries[0].entry_offset_m;
        assert!(plan
            .itineraries
            .iter()
            .all(|it| (it.entry_offset_m - first).abs() < 1e-9));
    }

    #[test]
    fn plan_errors_on_empty_fleet() {
        let s = ScenarioConfig::paper_default().with_mules(0).generate();
        assert_eq!(BTctp::new().plan(&s), Err(PlanError::NoMules));
    }

    #[test]
    fn plan_is_deterministic() {
        let s = scenario(11);
        let a = BTctp::new().plan(&s).unwrap();
        let b = BTctp::new().plan(&s).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn planner_name_matches_paper() {
        assert_eq!(BTctp::new().name(), "B-TCTP");
    }

    #[test]
    fn nearest_vertex_offset_picks_the_closest_vertex() {
        let path = mule_geom::Polyline::closed(vec![
            mule_geom::Point::new(0.0, 0.0),
            mule_geom::Point::new(10.0, 0.0),
            mule_geom::Point::new(10.0, 10.0),
        ]);
        let off = nearest_vertex_offset(&path, &mule_geom::Point::new(11.0, 1.0));
        assert!((off - 10.0).abs() < 1e-9);
        let zero = nearest_vertex_offset(&path, &mule_geom::Point::new(-1.0, -1.0));
        assert_eq!(zero, 0.0);
    }
}
