//! The [`Planner`] trait every patrolling algorithm implements.

use crate::plan::{PatrolPlan, PlanError};
use mule_workload::Scenario;

/// A patrolling planner: consumes a scenario, produces a plan.
///
/// Planners are deterministic functions of the scenario (including its
/// seed); running the same planner twice on the same scenario yields the
/// same plan. This mirrors the paper's distributed setting where every mule
/// runs the same construction rules on the same shared knowledge and must
/// arrive at the same path.
pub trait Planner {
    /// Short human-readable name used in reports ("B-TCTP", "CHB", …).
    fn name(&self) -> &'static str;

    /// Produces the patrol plan for `scenario`.
    fn plan(&self, scenario: &Scenario) -> Result<PatrolPlan, PlanError>;
}

impl<P: Planner + ?Sized> Planner for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn plan(&self, scenario: &Scenario) -> Result<PatrolPlan, PlanError> {
        (**self).plan(scenario)
    }
}

impl<P: Planner + ?Sized> Planner for &P {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn plan(&self, scenario: &Scenario) -> Result<PatrolPlan, PlanError> {
        (**self).plan(scenario)
    }
}

/// Blanket helper: validates the common preconditions shared by every
/// planner (at least one patrolled node, at least one mule).
pub(crate) fn validate_common(scenario: &Scenario) -> Result<(), PlanError> {
    if scenario.patrolled_positions().is_empty() {
        return Err(PlanError::NoTargets);
    }
    if scenario.mule_count() == 0 {
        return Err(PlanError::NoMules);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_workload::ScenarioConfig;

    #[test]
    fn validate_common_rejects_empty_fleets() {
        let no_mules = ScenarioConfig::paper_default().with_mules(0).generate();
        assert_eq!(validate_common(&no_mules), Err(PlanError::NoMules));
        let ok = ScenarioConfig::paper_default().generate();
        assert_eq!(validate_common(&ok), Ok(()));
    }
}
