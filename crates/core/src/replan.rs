//! Online replanning: reacting to disruptions mid-run.
//!
//! When the simulator applies a disruption (a target fails or arrives, a
//! mule breaks down) it asks a [`Replanner`] for a fresh [`PatrolPlan`]
//! over the *surviving world*: the still-active targets and the
//! still-operational mules, standing wherever the disruption caught them.
//!
//! The default implementation, [`ReplanWithPlanner`], simply re-runs a
//! [`Planner`] on a restricted scenario — the paper's planners are
//! deterministic functions of the scenario, so this is exactly "every mule
//! re-derives the shared path from the shared surviving knowledge", the
//! same distributed-consistency argument the paper uses for initial
//! planning.

use crate::plan::{PatrolPlan, PlanError};
use crate::planner::Planner;
use mule_geom::Point;
use mule_net::NodeId;
use mule_workload::Scenario;

/// Everything a replanner may consult when a disruption fires.
#[derive(Debug, Clone, Copy)]
pub struct ReplanContext<'a> {
    /// The original scenario (full field; activity is described by
    /// `inactive_targets`).
    pub scenario: &'a Scenario,
    /// Targets currently out of service (failed, or late and not yet
    /// arrived).
    pub inactive_targets: &'a [NodeId],
    /// Scenario indices of the mules still operational, ascending.
    pub active_mules: &'a [usize],
    /// Current positions of the active mules, aligned with `active_mules`.
    pub mule_positions: &'a [Point],
    /// The plan being executed when the disruption fired.
    pub previous: &'a PatrolPlan,
    /// Simulation time of the replan, seconds.
    pub time_s: f64,
}

/// A strategy for producing a new plan after a disruption.
pub trait Replanner {
    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Produces a plan covering the context's active targets with its
    /// active mules. Itineraries must carry *scenario* mule indices (the
    /// entries of [`ReplanContext::active_mules`]), not positions within
    /// the surviving subset.
    fn replan(&self, ctx: &ReplanContext<'_>) -> Result<PatrolPlan, PlanError>;
}

/// The default replanner: re-runs `planner` on the restricted scenario
/// (surviving targets, surviving mules at their current positions) and
/// maps the resulting itineraries back onto scenario mule indices.
#[derive(Debug, Clone, Default)]
pub struct ReplanWithPlanner<P: Planner> {
    planner: P,
}

impl<P: Planner> ReplanWithPlanner<P> {
    /// Wraps a planner for use as a replanner.
    pub fn new(planner: P) -> Self {
        ReplanWithPlanner { planner }
    }

    /// The wrapped planner.
    pub fn planner(&self) -> &P {
        &self.planner
    }
}

impl<P: Planner> Replanner for ReplanWithPlanner<P> {
    fn name(&self) -> &'static str {
        self.planner.name()
    }

    fn replan(&self, ctx: &ReplanContext<'_>) -> Result<PatrolPlan, PlanError> {
        let restricted = ctx
            .scenario
            .restricted(ctx.inactive_targets, ctx.mule_positions.to_vec());
        let mut plan = self.planner.plan(&restricted)?;
        // The restricted scenario numbers its mules 0..k; translate back to
        // the caller's scenario indices.
        for (itinerary, &scenario_index) in plan.itineraries.iter_mut().zip(ctx.active_mules) {
            itinerary.mule_index = scenario_index;
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BTctp;
    use mule_workload::ScenarioConfig;

    fn scenario() -> Scenario {
        ScenarioConfig::paper_default()
            .with_targets(8)
            .with_mules(4)
            .with_seed(9)
            .generate()
    }

    #[test]
    fn default_replanner_covers_only_surviving_targets() {
        let s = scenario();
        let initial = BTctp::new().plan(&s).unwrap();
        let dead = [s.patrolled_ids()[2], s.patrolled_ids()[5]];
        let replanner = ReplanWithPlanner::new(BTctp::new());
        let positions = vec![s.field().sink().unwrap().position; 3];
        let ctx = ReplanContext {
            scenario: &s,
            inactive_targets: &dead,
            active_mules: &[0, 2, 3],
            mule_positions: &positions,
            previous: &initial,
            time_s: 1_000.0,
        };
        let plan = replanner.replan(&ctx).unwrap();
        assert_eq!(plan.mule_count(), 3);
        let covered = plan.covered_nodes();
        for d in dead {
            assert!(
                !covered.contains(&d),
                "dead target {d} must not be patrolled"
            );
        }
        // Every surviving patrolled node is still covered (B-TCTP covers
        // the full set with one shared cycle).
        for id in s.patrolled_ids() {
            if !dead.contains(&id) {
                assert!(covered.contains(&id), "surviving target {id} lost");
            }
        }
        // Itineraries carry scenario mule indices.
        let indices: Vec<usize> = plan.itineraries.iter().map(|i| i.mule_index).collect();
        assert_eq!(indices, vec![0, 2, 3]);
        assert_eq!(replanner.name(), "B-TCTP");
    }

    #[test]
    fn replanning_with_no_survivors_errors_cleanly() {
        let s = scenario();
        let initial = BTctp::new().plan(&s).unwrap();
        let replanner = ReplanWithPlanner::new(BTctp::new());
        let ctx = ReplanContext {
            scenario: &s,
            inactive_targets: &[],
            active_mules: &[],
            mule_positions: &[],
            previous: &initial,
            time_s: 5.0,
        };
        assert_eq!(replanner.replan(&ctx).unwrap_err(), PlanError::NoMules);
    }
}
