//! The CHB baseline (reference \[5\]).
//!
//! All mules follow the same convex-hull-based Hamiltonian circuit, entering
//! it wherever is closest to their own starting position. Because the mules
//! are *not* spread to equal-arc start points, mules that start together
//! stay bunched, and the visiting interval of each target oscillates — the
//! behaviour Figures 7 and 8 attribute to CHB.

use crate::btctp::BTctp;
use crate::plan::{PatrolPlan, PlanError};
use crate::planner::Planner;
use mule_graph::ChbConfig;
use mule_workload::Scenario;

/// The CHB baseline planner.
#[derive(Debug, Clone, Default)]
pub struct ChbPlanner {
    /// Circuit-construction configuration.
    pub chb: ChbConfig,
}

impl ChbPlanner {
    /// CHB with the default circuit construction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style override of the circuit-construction configuration
    /// (pass budgets and exact/candidate-list search mode).
    pub fn with_chb(mut self, chb: ChbConfig) -> Self {
        self.chb = chb;
        self
    }
}

impl Planner for ChbPlanner {
    fn name(&self) -> &'static str {
        "CHB"
    }

    fn plan(&self, scenario: &Scenario) -> Result<PatrolPlan, PlanError> {
        let _span = mule_obs::span_owned(|| format!("planner.{}", self.name()));
        // CHB is exactly B-TCTP phase 1 without phase 2 (no start-point
        // spreading).
        let inner = BTctp {
            chb: self.chb,
            spread_start_points: false,
        };
        let mut plan = inner.plan(scenario)?;
        plan.planner_name = self.name().to_string();
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_workload::ScenarioConfig;

    #[test]
    fn chb_covers_every_node_once_but_does_not_spread_mules() {
        let s = ScenarioConfig::paper_default().with_seed(4).generate();
        let plan = ChbPlanner::new().plan(&s).unwrap();
        assert_eq!(plan.planner_name, "CHB");
        assert_eq!(plan.mule_count(), 4);
        for it in &plan.itineraries {
            assert_eq!(it.cycle.len(), s.patrolled_positions().len());
        }
        // All mules start at the sink, so they all enter at the same offset.
        let first = plan.itineraries[0].entry_offset_m;
        assert!(plan
            .itineraries
            .iter()
            .all(|it| (it.entry_offset_m - first).abs() < 1e-9));
    }

    #[test]
    fn chb_and_btctp_share_the_same_circuit() {
        let s = ScenarioConfig::paper_default().with_seed(6).generate();
        let chb = ChbPlanner::new().plan(&s).unwrap();
        let btctp = crate::BTctp::new().plan(&s).unwrap();
        assert_eq!(chb.itineraries[0].cycle, btctp.itineraries[0].cycle);
    }

    #[test]
    fn chb_propagates_plan_errors() {
        let s = ScenarioConfig::paper_default().with_mules(0).generate();
        assert_eq!(ChbPlanner::new().plan(&s), Err(PlanError::NoMules));
    }
}
