//! The Sweep baseline (reference \[4\]).
//!
//! "The Sweep approach initially divides the DMs into several groups and
//! then each DM individually patrols the targets of one group" (paper §V).
//! We partition the targets into as many groups as there are mules using
//! angular sectors around the sink (a natural sweep-coverage grouping),
//! build a CHB circuit per group (always including the sink so every group
//! can deliver its data), and assign each group's circuit to one mule.
//! Because group circuits have very different lengths, visiting intervals
//! differ across targets — the imbalance Fig. 7 shows for Sweep.

use crate::plan::{MuleItinerary, PatrolPlan, PlanError, Waypoint};
use crate::planner::{validate_common, Planner};
use mule_geom::Point;
use mule_graph::{construct_circuit_metric, ChbConfig};
use mule_net::NodeKind;
use mule_workload::Scenario;

/// How the Sweep baseline splits the targets into per-mule groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroupingStrategy {
    /// Contiguous angular sectors around the sink (the default, matching the
    /// sweep-coverage idea of reference \[4\]).
    #[default]
    AngularSectors,
    /// Spatially compact k-means clusters — a natural alternative for
    /// disconnected-cluster fields, kept as a grouping ablation.
    KMeans,
}

/// The Sweep baseline planner.
#[derive(Debug, Clone, Default)]
pub struct SweepPlanner {
    /// Circuit-construction configuration used for each group's route.
    pub chb: ChbConfig,
    /// How targets are split into per-mule groups.
    pub grouping: GroupingStrategy,
}

impl SweepPlanner {
    /// Sweep with the default per-group circuit construction and angular
    /// grouping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sweep with k-means grouping instead of angular sectors.
    pub fn with_kmeans() -> Self {
        SweepPlanner {
            chb: ChbConfig::default(),
            grouping: GroupingStrategy::KMeans,
        }
    }

    /// Builder-style override of the per-group circuit-construction
    /// configuration (pass budgets and exact/candidate-list search mode).
    pub fn with_chb(mut self, chb: ChbConfig) -> Self {
        self.chb = chb;
        self
    }

    /// Splits the targets of `scenario` into `groups` groups with the given
    /// strategy, returning one vector of node indices (into the field's node
    /// list) per group.
    pub fn group_targets_with(
        scenario: &Scenario,
        groups: usize,
        strategy: GroupingStrategy,
    ) -> Vec<Vec<usize>> {
        match strategy {
            GroupingStrategy::AngularSectors => Self::group_targets(scenario, groups),
            GroupingStrategy::KMeans => {
                let field = scenario.field();
                let targets: Vec<(usize, mule_geom::Point)> = field
                    .nodes()
                    .iter()
                    .filter(|n| n.kind == NodeKind::Target)
                    .map(|n| (n.id.index(), n.position))
                    .collect();
                let positions: Vec<mule_geom::Point> = targets.iter().map(|(_, p)| *p).collect();
                mule_graph::kmeans_partition(&positions, groups.max(1), 50)
                    .into_iter()
                    .map(|group| group.into_iter().map(|local| targets[local].0).collect())
                    .collect()
            }
        }
    }

    /// Splits the targets of `scenario` into `groups` angular sectors around
    /// the sink. Returns one vector of node indices (into the field's node
    /// list) per group; groups are balanced in size by splitting the
    /// angle-sorted target list into contiguous chunks.
    pub fn group_targets(scenario: &Scenario, groups: usize) -> Vec<Vec<usize>> {
        let field = scenario.field();
        let sink = field
            .sink()
            .map(|s| s.position)
            .unwrap_or_else(|| field.bounds().center());
        let mut targets: Vec<(usize, f64)> = field
            .nodes()
            .iter()
            .filter(|n| n.kind == NodeKind::Target)
            .map(|n| {
                let v = n.position - sink;
                (n.id.index(), v.angle())
            })
            .collect();
        targets.sort_by(|a, b| a.1.total_cmp(&b.1));

        let groups = groups.max(1);
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); groups];
        if targets.is_empty() {
            return out;
        }
        // Contiguous chunks of the angle-sorted list, sizes differing by at
        // most one.
        let per_group = targets.len().div_ceil(groups);
        for (i, (idx, _)) in targets.into_iter().enumerate() {
            out[(i / per_group).min(groups - 1)].push(idx);
        }
        out
    }
}

impl Planner for SweepPlanner {
    fn name(&self) -> &'static str {
        "Sweep"
    }

    fn plan(&self, scenario: &Scenario) -> Result<PatrolPlan, PlanError> {
        let _span = mule_obs::span_owned(|| format!("planner.{}", self.name()));
        validate_common(scenario)?;
        let field = scenario.field();
        let sink_node = field.sink();
        let groups = Self::group_targets_with(scenario, scenario.mule_count(), self.grouping);

        let itineraries = scenario
            .mule_starts()
            .iter()
            .enumerate()
            .map(|(m, start)| {
                let group = &groups[m.min(groups.len() - 1)];
                // The group's patrol set: its targets plus the sink.
                let mut nodes: Vec<(usize, Point)> = group
                    .iter()
                    .filter_map(|&idx| field.nodes().get(idx).map(|n| (idx, n.position)))
                    .collect();
                if let Some(sink) = sink_node {
                    nodes.push((sink.id.index(), sink.position));
                }
                if nodes.is_empty() {
                    // A mule with no targets idles at its start position.
                    return MuleItinerary::new(m, *start, vec![]);
                }
                let positions: Vec<Point> = nodes.iter().map(|(_, p)| *p).collect();
                let tour = construct_circuit_metric(&positions, scenario.metric(), &self.chb);
                let cycle: Vec<Waypoint> = tour
                    .order()
                    .iter()
                    .map(|&local| {
                        let (idx, pos) = nodes[local];
                        Waypoint::new(mule_net::NodeId(idx), pos)
                    })
                    .collect();
                MuleItinerary::new(m, *start, cycle)
            })
            .collect();

        Ok(PatrolPlan::new(self.name(), itineraries).with_metric_geometry(scenario.metric()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_workload::ScenarioConfig;

    fn scenario(seed: u64) -> Scenario {
        ScenarioConfig::paper_default()
            .with_targets(16)
            .with_seed(seed)
            .generate()
    }

    #[test]
    fn groups_partition_the_targets() {
        let s = scenario(3);
        let groups = SweepPlanner::group_targets(&s, 4);
        assert_eq!(groups.len(), 4);
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        assert_eq!(all.len(), 16, "every target is in exactly one group");
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 16);
        // Balanced sizes: no group larger than ceil(16/4) = 4.
        assert!(groups.iter().all(|g| g.len() <= 4));
    }

    #[test]
    fn every_target_is_covered_by_exactly_one_mule() {
        let s = scenario(5);
        let plan = SweepPlanner::new().plan(&s).unwrap();
        let mut covered = std::collections::HashMap::new();
        for it in &plan.itineraries {
            for node in it.covered_nodes() {
                *covered.entry(node).or_insert(0usize) += 1;
            }
        }
        for node in s.field().patrolled_nodes() {
            if node.kind == NodeKind::Target {
                assert_eq!(covered.get(&node.id), Some(&1), "target {}", node.id);
            }
        }
        // The sink is shared by every group.
        let sink = s.field().sink().unwrap().id;
        assert_eq!(covered.get(&sink), Some(&plan.mule_count()));
    }

    #[test]
    fn group_circuits_include_the_sink_and_are_valid_cycles() {
        let s = scenario(7);
        let plan = SweepPlanner::new().plan(&s).unwrap();
        let sink = s.field().sink().unwrap().id;
        for it in &plan.itineraries {
            assert!(it.visits_per_round(sink) == 1, "sink on every group route");
            assert!(it.cycle_length() > 0.0);
        }
    }

    #[test]
    fn more_mules_than_targets_leaves_spare_mules_idle() {
        let s = ScenarioConfig::paper_default()
            .with_targets(2)
            .with_mules(5)
            .with_seed(8)
            .generate();
        let plan = SweepPlanner::new().plan(&s).unwrap();
        assert_eq!(plan.mule_count(), 5);
        let idle = plan
            .itineraries
            .iter()
            .filter(|it| it.cycle.len() <= 1)
            .count();
        assert!(
            idle >= 2,
            "at least the surplus mules idle or only visit the sink"
        );
    }

    #[test]
    fn kmeans_grouping_also_partitions_all_targets() {
        let s = scenario(13);
        let groups = SweepPlanner::group_targets_with(&s, 4, GroupingStrategy::KMeans);
        assert_eq!(groups.len(), 4);
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 16);

        let plan = SweepPlanner::with_kmeans().plan(&s).unwrap();
        let mut covered = std::collections::HashSet::new();
        for it in &plan.itineraries {
            covered.extend(it.covered_nodes());
        }
        for node in s.field().patrolled_nodes() {
            assert!(covered.contains(&node.id), "node {} covered", node.id);
        }
    }

    #[test]
    fn zero_groups_is_clamped_and_errors_propagate() {
        let s = scenario(9);
        let groups = SweepPlanner::group_targets(&s, 0);
        assert_eq!(groups.len(), 1);
        let empty = ScenarioConfig::paper_default().with_mules(0).generate();
        assert_eq!(SweepPlanner::new().plan(&empty), Err(PlanError::NoMules));
        assert_eq!(SweepPlanner::new().name(), "Sweep");
    }
}
