//! The Random baseline.
//!
//! "The Random approach randomly selects the non-visited target as its next
//! destination" (paper §V): within one round a mule visits every patrolled
//! node exactly once but in a uniformly random order, and each round uses a
//! fresh random order. We realise this as a static itinerary by
//! pre-generating a fixed number of random permutations per mule
//! (seeded from the scenario seed and the mule index, so plans stay
//! deterministic and every mule wanders differently).

use crate::plan::{MuleItinerary, PatrolPlan, PlanError, Waypoint};
use crate::planner::{validate_common, Planner};
use mule_workload::Scenario;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The Random baseline planner.
#[derive(Debug, Clone)]
pub struct RandomPlanner {
    /// Number of random rounds pre-generated per mule. After the last
    /// pre-generated round the itinerary repeats from the first, which in
    /// practice is indistinguishable from fresh randomness for the horizons
    /// the figures use.
    pub rounds: usize,
}

impl Default for RandomPlanner {
    fn default() -> Self {
        // Fig. 7 tracks ~40 visits per target; 64 pre-generated rounds per
        // mule comfortably exceeds any horizon the harness simulates.
        RandomPlanner { rounds: 64 }
    }
}

impl RandomPlanner {
    /// Random baseline with the default number of pre-generated rounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Random baseline with an explicit number of pre-generated rounds.
    pub fn with_rounds(rounds: usize) -> Self {
        RandomPlanner {
            rounds: rounds.max(1),
        }
    }
}

impl Planner for RandomPlanner {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn plan(&self, scenario: &Scenario) -> Result<PatrolPlan, PlanError> {
        let _span = mule_obs::span_owned(|| format!("planner.{}", self.name()));
        validate_common(scenario)?;
        let positions = scenario.patrolled_positions();
        let ids = scenario.patrolled_ids();
        let waypoints: Vec<Waypoint> = ids
            .iter()
            .zip(positions.iter())
            .map(|(id, p)| Waypoint::new(*id, *p))
            .collect();

        let itineraries = scenario
            .mule_starts()
            .iter()
            .enumerate()
            .map(|(m, start)| {
                // Seed per (scenario, mule) so different mules wander
                // independently but the whole plan stays reproducible.
                let mut rng = StdRng::seed_from_u64(
                    scenario
                        .config()
                        .seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(m as u64),
                );
                let mut cycle = Vec::with_capacity(waypoints.len() * self.rounds.max(1));
                for _ in 0..self.rounds.max(1) {
                    let mut round = waypoints.clone();
                    round.shuffle(&mut rng);
                    cycle.extend(round);
                }
                MuleItinerary::new(m, *start, cycle)
            })
            .collect();

        Ok(PatrolPlan::new(self.name(), itineraries).with_metric_geometry(scenario.metric()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_workload::ScenarioConfig;

    fn scenario(seed: u64) -> Scenario {
        ScenarioConfig::paper_default().with_seed(seed).generate()
    }

    #[test]
    fn every_round_visits_every_node_exactly_once() {
        let s = scenario(2);
        let planner = RandomPlanner::with_rounds(5);
        let plan = planner.plan(&s).unwrap();
        let node_count = s.patrolled_positions().len();
        for it in &plan.itineraries {
            assert_eq!(it.cycle.len(), node_count * 5);
            // Each consecutive block of `node_count` waypoints is a
            // permutation of the patrolled nodes.
            for round in it.cycle.chunks(node_count) {
                let mut ids: Vec<usize> = round.iter().map(|w| w.node.index()).collect();
                ids.sort_unstable();
                ids.dedup();
                assert_eq!(ids.len(), node_count);
            }
        }
    }

    #[test]
    fn different_mules_get_different_orders_but_plans_are_deterministic() {
        let s = scenario(9);
        let a = RandomPlanner::new().plan(&s).unwrap();
        let b = RandomPlanner::new().plan(&s).unwrap();
        assert_eq!(a, b, "same scenario, same plan");
        assert_ne!(
            a.itineraries[0].cycle, a.itineraries[1].cycle,
            "mules wander independently"
        );
    }

    #[test]
    fn rounds_are_clamped_to_at_least_one() {
        let s = scenario(3);
        let plan = RandomPlanner::with_rounds(0).plan(&s).unwrap();
        assert_eq!(
            plan.itineraries[0].cycle.len(),
            s.patrolled_positions().len()
        );
    }

    #[test]
    fn errors_propagate() {
        let s = ScenarioConfig::paper_default().with_mules(0).generate();
        assert_eq!(RandomPlanner::new().plan(&s), Err(PlanError::NoMules));
        assert_eq!(RandomPlanner::new().name(), "Random");
    }
}
