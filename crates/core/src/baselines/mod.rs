//! Baseline planners the paper compares against (§V).
//!
//! * [`RandomPlanner`] — "randomly selects the non-visited target as its
//!   next destination": each round is a fresh random permutation of the
//!   patrolled nodes.
//! * [`SweepPlanner`] — reference \[4\]: "divides the DMs into several groups
//!   and then each DM individually patrols the targets of one group".
//! * [`ChbPlanner`] — reference \[5\]: "constructs an efficient Hamiltonian
//!   Circuit and then all DMs visit each target along the constructed
//!   Hamiltonian Circuit", with no start-point spreading, no weights and no
//!   recharge handling.

pub mod chb;
pub mod random;
pub mod sweep;

pub use chb::ChbPlanner;
pub use random::RandomPlanner;
pub use sweep::{GroupingStrategy, SweepPlanner};
