//! RW-TCTP: W-TCTP with recharge (paper §IV).
//!
//! Path-construction phase: build the ordinary Weighted Patrolling Path
//! (WPP) exactly as W-TCTP does, then build the **Weighted Recharge Path**
//! (WRP) by splicing the recharge station `R` into the break edge that
//! minimises the added length (Exp. 3).
//!
//! Patrolling phase: Eq. 4 gives the number of rounds `r` a mule can afford
//! per battery charge; the mule follows the WPP for `r − 1` rounds and the
//! WRP on the `r`-th round, recharging at `R`. We encode that schedule
//! directly in the itinerary by concatenating `r − 1` WPP traversals and one
//! WRP traversal into a single repeating cycle, so the simulator needs no
//! planner-specific logic.

use crate::deployment::assign_start_points;
use crate::plan::{MuleItinerary, PatrolPlan, PlanError, Waypoint};
use crate::planner::{validate_common, Planner};
use crate::wtctp::{BreakEdgePolicy, WTctp};
use mule_energy::{EnergyModel, PatrolRounds};
use mule_graph::ChbConfig;
use mule_workload::Scenario;

/// Upper bound on the number of WPP traversals encoded per recharge period.
///
/// Eq. 4 can yield enormous round counts for very short paths or very large
/// batteries; beyond this many rounds the schedule repeats anyway and a
/// longer encoding only wastes memory.
const MAX_ENCODED_ROUNDS: u32 = 256;

/// The RW-TCTP planner.
#[derive(Debug, Clone)]
pub struct RwTctp {
    /// Break-edge policy used for the underlying WPP.
    pub policy: BreakEdgePolicy,
    /// Circuit-construction configuration.
    pub chb: ChbConfig,
    /// Energy model (battery capacity, movement/collection costs) used to
    /// evaluate Eq. 4.
    pub energy: EnergyModel,
}

impl Default for RwTctp {
    fn default() -> Self {
        RwTctp {
            policy: BreakEdgePolicy::default(),
            chb: ChbConfig::default(),
            energy: EnergyModel::paper_default(),
        }
    }
}

/// The two paths RW-TCTP constructs plus the Eq. 4 schedule, exposed for
/// benches and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct RechargeSchedule {
    /// The ordinary weighted patrolling path.
    pub wpp: Vec<Waypoint>,
    /// The weighted recharge path (WPP with the station spliced in).
    pub wrp: Vec<Waypoint>,
    /// Eq. 4 evaluation over the WRP.
    pub rounds: PatrolRounds,
}

impl RechargeSchedule {
    /// Length of one WPP traversal, metres.
    pub fn wpp_length(&self) -> f64 {
        path_length(&self.wpp)
    }

    /// Length of one WRP traversal, metres.
    pub fn wrp_length(&self) -> f64 {
        path_length(&self.wrp)
    }

    /// Extra length of the recharge detour relative to the WPP.
    pub fn recharge_detour(&self) -> f64 {
        self.wrp_length() - self.wpp_length()
    }
}

fn path_length(waypoints: &[Waypoint]) -> f64 {
    mule_geom::Polyline::closed(waypoints.iter().map(|w| w.position).collect()).length()
}

/// Closed-walk length under an arbitrary travel metric (what a mule
/// physically drives on a road network).
fn metric_path_length(waypoints: &[Waypoint], metric: &mule_road::TravelMetric) -> f64 {
    let n = waypoints.len();
    if n < 2 {
        return 0.0;
    }
    (0..n)
        .map(|i| metric.distance(&waypoints[i].position, &waypoints[(i + 1) % n].position))
        .sum()
}

impl RwTctp {
    /// RW-TCTP with the given break-edge policy and the paper's energy
    /// constants.
    pub fn new(policy: BreakEdgePolicy) -> Self {
        RwTctp {
            policy,
            ..RwTctp::default()
        }
    }

    /// RW-TCTP with an explicit energy model.
    pub fn with_energy(policy: BreakEdgePolicy, energy: EnergyModel) -> Self {
        RwTctp {
            policy,
            chb: ChbConfig::default(),
            energy,
        }
    }

    /// Builder-style override of the circuit-construction configuration
    /// (pass budgets and exact/candidate-list search mode).
    pub fn with_chb(mut self, chb: ChbConfig) -> Self {
        self.chb = chb;
        self
    }

    /// Builds the WPP, the WRP and the Eq. 4 schedule for `scenario`.
    pub fn build_schedule(&self, scenario: &Scenario) -> Result<RechargeSchedule, PlanError> {
        let station = scenario
            .field()
            .recharge_station()
            .ok_or(PlanError::MissingRechargeStation)?;

        let wtctp = WTctp {
            policy: self.policy,
            chb: self.chb,
        };
        let wpp = wtctp.build_wpp_waypoints(scenario)?;
        let wrp = splice_station(&wpp, Waypoint::new(station.id, station.position));

        // Eq. 4: r = M_Energy / (|P̂|·c_m + h·c_s), with h the number of
        // collections performed in one recharge-path round. |P̂| must be
        // the distance a mule *actually travels* — under a road metric the
        // chord length underestimates it, which would overbudget rounds
        // and strand mules short of the station.
        let collections = wrp.len();
        let round_length = if scenario.metric().is_euclidean() {
            path_length(&wrp)
        } else {
            metric_path_length(&wrp, scenario.metric())
        };
        let rounds = PatrolRounds::evaluate(&self.energy, round_length, collections);

        Ok(RechargeSchedule { wpp, wrp, rounds })
    }
}

/// Splices the recharge station into the break edge of `wpp` that minimises
/// the added length (Exp. 3). A single-waypoint path simply appends the
/// station.
fn splice_station(wpp: &[Waypoint], station: Waypoint) -> Vec<Waypoint> {
    let n = wpp.len();
    if n == 0 {
        return vec![station];
    }
    if n == 1 {
        return vec![wpp[0], station];
    }
    let mut best_edge = 0;
    let mut best_cost = f64::INFINITY;
    for edge in 0..n {
        let a = wpp[edge].position;
        let b = wpp[(edge + 1) % n].position;
        let cost = a.distance(&station.position) + station.position.distance(&b) - a.distance(&b);
        if cost < best_cost {
            best_cost = cost;
            best_edge = edge;
        }
    }
    let mut wrp = Vec::with_capacity(n + 1);
    wrp.extend_from_slice(&wpp[..=best_edge]);
    wrp.push(station);
    wrp.extend_from_slice(&wpp[best_edge + 1..]);
    wrp
}

impl Planner for RwTctp {
    fn name(&self) -> &'static str {
        "RW-TCTP"
    }

    fn plan(&self, scenario: &Scenario) -> Result<PatrolPlan, PlanError> {
        let _span = mule_obs::span_owned(|| format!("planner.{}", self.name()));
        validate_common(scenario)?;
        let schedule = self.build_schedule(scenario)?;

        // Encode "WPP for r−1 rounds, WRP on round r" as one repeating
        // super-cycle.
        let repeats = schedule
            .rounds
            .patrol_rounds_between_recharges()
            .min(MAX_ENCODED_ROUNDS);
        let mut super_cycle =
            Vec::with_capacity(schedule.wpp.len() * repeats as usize + schedule.wrp.len());
        for _ in 0..repeats {
            super_cycle.extend_from_slice(&schedule.wpp);
        }
        super_cycle.extend_from_slice(&schedule.wrp);

        // Mules spread over the super-cycle exactly as in W-TCTP.
        let path = mule_geom::Polyline::closed(super_cycle.iter().map(|w| w.position).collect());
        let deployments = assign_start_points(&path, scenario.mule_starts());
        let itineraries = scenario
            .mule_starts()
            .iter()
            .enumerate()
            .map(|(m, start)| {
                MuleItinerary::new(m, *start, super_cycle.clone())
                    .with_entry_offset(deployments[m].entry_offset_m)
            })
            .collect();
        Ok(PatrolPlan::new(self.name(), itineraries).with_metric_geometry(scenario.metric()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_net::NodeKind;
    use mule_workload::{ScenarioConfig, WeightSpec};

    fn scenario(seed: u64) -> Scenario {
        ScenarioConfig::paper_default()
            .with_targets(12)
            .with_weights(WeightSpec::UniformVips {
                count: 2,
                weight: 3,
            })
            .with_recharge_station(true)
            .with_seed(seed)
            .generate()
    }

    #[test]
    fn schedule_contains_the_station_only_in_the_wrp() {
        let s = scenario(3);
        let schedule = RwTctp::default().build_schedule(&s).unwrap();
        let station = s.field().recharge_station().unwrap().id;
        assert_eq!(
            schedule.wpp.iter().filter(|w| w.node == station).count(),
            0,
            "WPP never visits the station"
        );
        assert_eq!(
            schedule.wrp.iter().filter(|w| w.node == station).count(),
            1,
            "WRP visits the station exactly once"
        );
        assert_eq!(schedule.wrp.len(), schedule.wpp.len() + 1);
    }

    #[test]
    fn wrp_detour_is_the_minimum_over_break_edges() {
        let s = scenario(5);
        let schedule = RwTctp::default().build_schedule(&s).unwrap();
        let station = s.field().recharge_station().unwrap().position;
        // Brute-force the best splice cost over the WPP and compare.
        let n = schedule.wpp.len();
        let mut best = f64::INFINITY;
        for edge in 0..n {
            let a = schedule.wpp[edge].position;
            let b = schedule.wpp[(edge + 1) % n].position;
            let cost = a.distance(&station) + station.distance(&b) - a.distance(&b);
            best = best.min(cost);
        }
        assert!((schedule.recharge_detour() - best).abs() < 1e-6);
        assert!(schedule.recharge_detour() >= -1e-9);
        assert!(schedule.wrp_length() >= schedule.wpp_length() - 1e-9);
    }

    #[test]
    fn missing_station_is_reported() {
        let s = ScenarioConfig::paper_default().with_seed(1).generate();
        assert_eq!(
            RwTctp::default().plan(&s),
            Err(PlanError::MissingRechargeStation)
        );
    }

    #[test]
    fn plan_encodes_r_minus_one_wpp_rounds_plus_one_wrp_round() {
        let s = scenario(7);
        let planner = RwTctp::default();
        let schedule = planner.build_schedule(&s).unwrap();
        let plan = planner.plan(&s).unwrap();
        let it = &plan.itineraries[0];
        let station = s.field().recharge_station().unwrap().id;
        // The super-cycle visits the station exactly once per recharge
        // period.
        assert_eq!(it.visits_per_round(station), 1);
        let repeats = schedule.rounds.patrol_rounds_between_recharges().min(256) as usize;
        assert_eq!(
            it.cycle.len(),
            schedule.wpp.len() * repeats + schedule.wrp.len()
        );
        // Every target appears (repeats + 1) × weight times.
        for node in s.field().patrolled_nodes() {
            assert_eq!(
                it.visits_per_round(node.id),
                (repeats + 1) * node.weight.value() as usize,
                "node {}",
                node.id
            );
        }
    }

    #[test]
    fn rounds_follow_eq4_for_the_paper_energy_model() {
        let s = scenario(11);
        let planner = RwTctp::default();
        let schedule = planner.build_schedule(&s).unwrap();
        let expected = (planner.energy.initial_energy_j
            / (schedule.wrp_length() * planner.energy.move_cost_j_per_m
                + schedule.wrp.len() as f64 * planner.energy.collect_cost_j))
            .floor() as u32;
        assert_eq!(schedule.rounds.rounds_per_charge, expected.max(1));
        assert!(schedule.rounds.is_feasible(&planner.energy));
    }

    #[test]
    fn tiny_batteries_still_produce_a_plan_with_frequent_recharges() {
        let s = scenario(13);
        let tiny = EnergyModel {
            initial_energy_j: 10_000.0,
            ..EnergyModel::paper_default()
        };
        let planner = RwTctp::with_energy(BreakEdgePolicy::ShortestLength, tiny);
        let schedule = planner.build_schedule(&s).unwrap();
        // 10 kJ cannot cover a multi-kilometre round: recharge every round.
        assert_eq!(schedule.rounds.patrol_rounds_between_recharges(), 0);
        let plan = planner.plan(&s).unwrap();
        let station = s.field().recharge_station().unwrap().id;
        assert_eq!(plan.itineraries[0].visits_per_round(station), 1);
        assert_eq!(plan.itineraries[0].cycle.len(), schedule.wrp.len());
    }

    #[test]
    fn station_node_kind_is_preserved_in_the_plan() {
        let s = scenario(17);
        let plan = RwTctp::default().plan(&s).unwrap();
        let station = s.field().recharge_station().unwrap();
        assert_eq!(station.kind, NodeKind::RechargeStation);
        assert!(plan.covered_nodes().contains(&station.id));
    }

    #[test]
    fn planner_name_matches_paper() {
        assert_eq!(RwTctp::default().name(), "RW-TCTP");
    }
}
