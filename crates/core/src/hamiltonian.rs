//! Shared Hamiltonian-circuit construction over a scenario.
//!
//! Every TCTP planner and the CHB baseline start from the same step: build
//! the CHB Hamiltonian circuit over the patrolled nodes (targets + sink) and
//! rotate it so traversal starts at the paper's canonical anchor, the most
//! north target point (§2.2 B: "Each DM will treat the most north target
//! point as the first start point"). Keeping this in one place guarantees
//! all planners (and thus all simulated mules) agree on the circuit.

use crate::plan::Waypoint;
use mule_geom::polyline::northmost_index;
use mule_geom::Point;
use mule_graph::{construct_circuit_metric, ChbConfig};
use mule_net::NodeId;
use mule_workload::Scenario;

/// The shared circuit: waypoints in traversal order (starting at the
/// northmost patrolled node), plus the index mapping used to build it.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedCircuit {
    /// Waypoints in traversal order; a closed cycle (the last connects back
    /// to the first).
    pub waypoints: Vec<Waypoint>,
}

impl SharedCircuit {
    /// Builds the circuit for `scenario` with the given CHB configuration,
    /// under the scenario's travel metric: Euclidean scenarios take the
    /// historical (byte-identical) construction path, road scenarios build
    /// and polish the tour over shortest-path road distances.
    ///
    /// Returns `None` when the scenario has no patrolled nodes.
    pub fn build(scenario: &Scenario, chb: &ChbConfig) -> Option<Self> {
        let positions = scenario.patrolled_positions();
        let ids = scenario.patrolled_ids();
        if positions.is_empty() {
            return None;
        }

        // The Hamiltonian circuit over local indices 0..k of the patrolled
        // set, costed by the scenario's metric.
        let tour = construct_circuit_metric(&positions, scenario.metric(), chb);
        let mut order = tour.into_order();

        // Rotate so the most north patrolled node comes first — the paper's
        // deterministic anchor shared by all mules.
        if let Some(north_local) = northmost_index(&positions) {
            if let Some(pos) = order.iter().position(|&i| i == north_local) {
                order.rotate_left(pos);
            }
        }

        let waypoints = order
            .into_iter()
            .map(|local| Waypoint::new(ids[local], positions[local]))
            .collect();
        Some(SharedCircuit { waypoints })
    }

    /// Positions of the circuit waypoints in traversal order.
    pub fn positions(&self) -> Vec<Point> {
        self.waypoints.iter().map(|w| w.position).collect()
    }

    /// Node ids of the circuit waypoints in traversal order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.waypoints.iter().map(|w| w.node).collect()
    }

    /// Total circuit length, metres.
    pub fn length(&self) -> f64 {
        mule_geom::Polyline::closed(self.positions()).length()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_workload::ScenarioConfig;

    fn scenario() -> Scenario {
        ScenarioConfig::paper_default()
            .with_targets(12)
            .with_seed(17)
            .generate()
    }

    #[test]
    fn circuit_covers_every_patrolled_node_exactly_once() {
        let s = scenario();
        let c = SharedCircuit::build(&s, &ChbConfig::default()).unwrap();
        assert_eq!(c.waypoints.len(), s.patrolled_positions().len());
        let mut ids = c.node_ids();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), c.waypoints.len(), "no node repeats");
        assert!(c.length() > 0.0);
    }

    #[test]
    fn circuit_starts_at_the_northmost_patrolled_node() {
        let s = scenario();
        let c = SharedCircuit::build(&s, &ChbConfig::default()).unwrap();
        let north_y = c.waypoints[0].position.y;
        for w in &c.waypoints {
            assert!(north_y >= w.position.y - 1e-9);
        }
    }

    #[test]
    fn circuit_construction_is_deterministic() {
        let s = scenario();
        let a = SharedCircuit::build(&s, &ChbConfig::default()).unwrap();
        let b = SharedCircuit::build(&s, &ChbConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn raw_construction_is_never_shorter_than_polished() {
        let s = scenario();
        let polished = SharedCircuit::build(&s, &ChbConfig::default()).unwrap();
        let raw = SharedCircuit::build(&s, &ChbConfig::construction_only()).unwrap();
        assert!(polished.length() <= raw.length() + 1e-9);
    }

    #[test]
    fn large_scenarios_build_circuits_via_the_candidate_path() {
        // 400 targets is far above `AUTO_EXACT_THRESHOLD`, so the default
        // config routes through candidate-list search — this is the path
        // every planner takes on ROADMAP-scale topologies. With the exact
        // pipeline this test would take minutes in debug builds.
        let s = mule_workload::ScenarioConfig::large_scale(400)
            .with_seed(3)
            .generate();
        let c = SharedCircuit::build(&s, &ChbConfig::default()).unwrap();
        assert_eq!(c.waypoints.len(), s.patrolled_positions().len());
        let mut ids = c.node_ids();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), c.waypoints.len(), "no node repeats");
        // Deterministic: same scenario, same circuit.
        let again = SharedCircuit::build(&s, &ChbConfig::default()).unwrap();
        assert_eq!(c, again);
        // Explicit candidate mode with another k also works end to end.
        let explicit = SharedCircuit::build(
            &s,
            &ChbConfig::default().with_search(mule_graph::SearchMode::Candidates(6)),
        )
        .unwrap();
        assert_eq!(explicit.waypoints.len(), c.waypoints.len());
    }

    #[test]
    fn single_node_scenarios_yield_single_waypoint_circuits() {
        let s = ScenarioConfig::paper_default()
            .with_targets(0)
            .with_seed(1)
            .generate();
        let c = SharedCircuit::build(&s, &ChbConfig::default()).unwrap();
        assert_eq!(c.waypoints.len(), 1); // just the sink
        assert_eq!(c.length(), 0.0);
    }
}
