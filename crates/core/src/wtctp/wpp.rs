//! Weighted Patrolling Path construction (paper §3.1).
//!
//! The WPP is represented as a closed *walk*: a cyclic sequence of node
//! indices in which a VIP of weight `w` appears exactly `w` times and every
//! NTP appears exactly once. Inserting an extra occurrence of VIP `k` into
//! the edge `(a, b)` of the walk is exactly the paper's cycle-creation step:
//! the break edge `a–b` is removed and the break points are reconnected to
//! `k`, so one more cycle intersects at `k`.

use crate::wtctp::BreakEdgePolicy;
use mule_geom::Point;

/// Builds the WPP walk.
///
/// * `base_walk` — the Hamiltonian circuit as a cyclic sequence of local
///   indices (each exactly once).
/// * `positions` — coordinates indexed by local index.
/// * `weights` — visiting weight per local index (≥ 1).
/// * `policy` — break-edge selection policy.
///
/// VIPs are processed in descending weight order, ties broken by local index
/// (paper §3.1 B assigns priority `p_i = w_i`). The returned walk contains
/// `w_i` occurrences of every index `i`.
pub fn build_wpp(
    base_walk: &[usize],
    positions: &[Point],
    weights: &[u32],
    policy: BreakEdgePolicy,
) -> Vec<usize> {
    let mut walk: Vec<usize> = base_walk.to_vec();
    if walk.len() < 3 {
        // With fewer than 3 waypoints there are no meaningful break edges;
        // just repeat VIPs in place so visit counts still hold.
        let mut out = Vec::new();
        for &i in base_walk {
            let w = weights.get(i).copied().unwrap_or(1).max(1);
            for _ in 0..w {
                out.push(i);
            }
        }
        return out;
    }

    // VIPs in descending weight order (priority p_i = w_i).
    let mut vips: Vec<usize> = (0..weights.len()).filter(|&i| weights[i] >= 2).collect();
    vips.sort_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));

    for vip in vips {
        let extra = weights[vip].max(1) - 1;
        // L_avg is fixed per VIP from the path length at the start of its
        // processing (paper: L_avg = |P̄| / w_i).
        let l_avg = walk_length(&walk, positions) / f64::from(weights[vip].max(1));
        for _ in 0..extra {
            let pos = match policy {
                BreakEdgePolicy::ShortestLength => best_edge_shortest(&walk, positions, vip),
                BreakEdgePolicy::BalancingLength => {
                    best_edge_balancing(&walk, positions, vip, l_avg)
                }
            };
            match pos {
                Some(edge_index) => walk.insert(edge_index + 1, vip),
                // No admissible break edge (every edge touches the VIP —
                // only possible for pathological 2-node walks): duplicate in
                // place to preserve the visit-count invariant.
                None => {
                    let at = walk.iter().position(|&x| x == vip).unwrap_or(0);
                    walk.insert(at, vip);
                }
            }
        }
    }
    walk
}

/// Total length of a closed walk.
pub fn walk_length(walk: &[usize], positions: &[Point]) -> f64 {
    if walk.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..walk.len() {
        let a = positions[walk[i]];
        let b = positions[walk[(i + 1) % walk.len()]];
        total += a.distance(&b);
    }
    total
}

/// Lengths of the cycles intersecting at `vip`: the arc lengths of the walk
/// between consecutive occurrences of `vip` (Definition 2/4). When `vip`
/// occurs only once (or not at all) the single "cycle" is the whole walk.
pub fn vip_cycle_lengths(walk: &[usize], positions: &[Point], vip: usize) -> Vec<f64> {
    let occurrences: Vec<usize> = walk
        .iter()
        .enumerate()
        .filter(|(_, &x)| x == vip)
        .map(|(i, _)| i)
        .collect();
    if occurrences.len() <= 1 {
        return vec![walk_length(walk, positions)];
    }
    let n = walk.len();
    let mut lengths = Vec::with_capacity(occurrences.len());
    for (k, &start) in occurrences.iter().enumerate() {
        let end = occurrences[(k + 1) % occurrences.len()];
        // Arc from `start` to `end` going forward (wrapping).
        let mut len = 0.0;
        let mut i = start;
        loop {
            let j = (i + 1) % n;
            len += positions[walk[i]].distance(&positions[walk[j]]);
            i = j;
            if i == end {
                break;
            }
        }
        lengths.push(len);
    }
    lengths
}

/// Detour cost of inserting `vip` into the walk edge starting at `edge`
/// (i.e. between `walk[edge]` and `walk[edge + 1]`).
fn detour_cost(walk: &[usize], positions: &[Point], edge: usize, vip: usize) -> f64 {
    let n = walk.len();
    let a = positions[walk[edge]];
    let b = positions[walk[(edge + 1) % n]];
    let v = positions[vip];
    a.distance(&v) + v.distance(&b) - a.distance(&b)
}

/// Returns `true` when the walk edge starting at `edge` is incident to
/// `vip` (inserting there would create a zero-length cycle).
fn edge_touches(walk: &[usize], edge: usize, vip: usize) -> bool {
    let n = walk.len();
    walk[edge] == vip || walk[(edge + 1) % n] == vip
}

/// Shortest-Length policy (Exp. 1): the admissible edge with the smallest
/// detour cost.
fn best_edge_shortest(walk: &[usize], positions: &[Point], vip: usize) -> Option<usize> {
    let n = walk.len();
    let mut best: Option<(usize, f64)> = None;
    for edge in 0..n {
        if edge_touches(walk, edge, vip) {
            continue;
        }
        let cost = detour_cost(walk, positions, edge, vip);
        if best.map(|(_, b)| cost < b).unwrap_or(true) {
            best = Some((edge, cost));
        }
    }
    best.map(|(e, _)| e)
}

/// Balancing-Length policy (Exp. 2): the admissible edge that minimises
/// `Σ_f |len(C_f) − L_avg|` over the cycles the insertion would create,
/// with the detour cost as tie-breaker.
fn best_edge_balancing(
    walk: &[usize],
    positions: &[Point],
    vip: usize,
    l_avg: f64,
) -> Option<usize> {
    let n = walk.len();
    let mut best: Option<(usize, f64, f64)> = None; // (edge, objective, detour)
    for edge in 0..n {
        if edge_touches(walk, edge, vip) {
            continue;
        }
        // Hypothetically insert and measure the balance objective.
        let mut candidate = Vec::with_capacity(n + 1);
        candidate.extend_from_slice(&walk[..=edge]);
        candidate.push(vip);
        candidate.extend_from_slice(&walk[edge + 1..]);
        let objective: f64 = vip_cycle_lengths(&candidate, positions, vip)
            .iter()
            .map(|len| (len - l_avg).abs())
            .sum();
        let detour = detour_cost(walk, positions, edge, vip);
        let better = match best {
            None => true,
            Some((_, obj, det)) => {
                objective < obj - 1e-12 || ((objective - obj).abs() <= 1e-12 && detour < det)
            }
        };
        if better {
            best = Some((edge, objective, detour));
        }
    }
    best.map(|(e, _, _)| e)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 10-target ring plus an off-centre VIP, mirroring the paper's Fig. 2
    /// setting (target g4 is a VIP with w4 = 2).
    fn ring_positions(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let t = std::f64::consts::TAU * i as f64 / n as f64;
                Point::new(400.0 + 300.0 * t.cos(), 400.0 + 300.0 * t.sin())
            })
            .collect()
    }

    fn base(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn unweighted_walk_is_returned_unchanged() {
        let pos = ring_positions(8);
        let weights = vec![1; 8];
        for policy in BreakEdgePolicy::ALL {
            let walk = build_wpp(&base(8), &pos, &weights, policy);
            assert_eq!(walk, base(8));
        }
    }

    #[test]
    fn vip_occurs_weight_times_in_the_walk() {
        let pos = ring_positions(10);
        let mut weights = vec![1; 10];
        weights[4] = 3;
        weights[7] = 2;
        for policy in BreakEdgePolicy::ALL {
            let walk = build_wpp(&base(10), &pos, &weights, policy);
            assert_eq!(walk.iter().filter(|&&x| x == 4).count(), 3, "{policy:?}");
            assert_eq!(walk.iter().filter(|&&x| x == 7).count(), 2, "{policy:?}");
            for i in 0..10 {
                if i != 4 && i != 7 {
                    assert_eq!(walk.iter().filter(|&&x| x == i).count(), 1);
                }
            }
            assert_eq!(walk.len(), 10 + 2 + 1);
        }
    }

    #[test]
    fn wpp_is_longer_than_the_base_circuit_but_bounded_by_detours() {
        let pos = ring_positions(12);
        let mut weights = vec![1; 12];
        weights[0] = 4;
        let base_len = walk_length(&base(12), &pos);
        for policy in BreakEdgePolicy::ALL {
            let walk = build_wpp(&base(12), &pos, &weights, policy);
            let len = walk_length(&walk, &pos);
            assert!(len >= base_len - 1e-9, "{policy:?}");
            // Each of the 3 insertions detours at most twice the field
            // diagonal.
            assert!(len <= base_len + 3.0 * 2.0 * 800.0 * 2.0_f64.sqrt());
        }
    }

    #[test]
    fn shortest_policy_minimises_total_length_vs_balancing() {
        let pos = ring_positions(14);
        let mut weights = vec![1; 14];
        weights[3] = 4;
        weights[9] = 3;
        let shortest = build_wpp(&base(14), &pos, &weights, BreakEdgePolicy::ShortestLength);
        let balancing = build_wpp(&base(14), &pos, &weights, BreakEdgePolicy::BalancingLength);
        assert!(walk_length(&shortest, &pos) <= walk_length(&balancing, &pos) + 1e-9);
    }

    #[test]
    fn balancing_policy_gives_more_even_cycles() {
        // A ring with one heavy VIP: the balancing policy should produce
        // cycle lengths with a smaller spread than the shortest policy.
        let pos = ring_positions(16);
        let mut weights = vec![1; 16];
        weights[5] = 4;
        let spread = |walk: &[usize]| {
            let lens = vip_cycle_lengths(walk, &pos, 5);
            let max = lens.iter().cloned().fold(f64::MIN, f64::max);
            let min = lens.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        let shortest = build_wpp(&base(16), &pos, &weights, BreakEdgePolicy::ShortestLength);
        let balancing = build_wpp(&base(16), &pos, &weights, BreakEdgePolicy::BalancingLength);
        assert!(
            spread(&balancing) <= spread(&shortest) + 1e-9,
            "balancing spread {} vs shortest spread {}",
            spread(&balancing),
            spread(&shortest)
        );
    }

    #[test]
    fn cycle_lengths_sum_to_the_walk_length() {
        let pos = ring_positions(12);
        let mut weights = vec![1; 12];
        weights[2] = 3;
        for policy in BreakEdgePolicy::ALL {
            let walk = build_wpp(&base(12), &pos, &weights, policy);
            let cycles = vip_cycle_lengths(&walk, &pos, 2);
            assert_eq!(cycles.len(), 3);
            let total: f64 = cycles.iter().sum();
            assert!((total - walk_length(&walk, &pos)).abs() < 1e-6);
        }
    }

    #[test]
    fn single_occurrence_cycle_is_the_whole_walk() {
        let pos = ring_positions(6);
        let walk = base(6);
        let cycles = vip_cycle_lengths(&walk, &pos, 3);
        assert_eq!(cycles.len(), 1);
        assert!((cycles[0] - walk_length(&walk, &pos)).abs() < 1e-9);
    }

    #[test]
    fn tiny_walks_fall_back_to_in_place_duplication() {
        let pos = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let weights = vec![2, 1];
        let walk = build_wpp(&[0, 1], &pos, &weights, BreakEdgePolicy::ShortestLength);
        assert_eq!(walk.iter().filter(|&&x| x == 0).count(), 2);
        assert_eq!(walk.iter().filter(|&&x| x == 1).count(), 1);
    }

    #[test]
    fn never_inserts_adjacent_to_the_vip_itself() {
        let pos = ring_positions(10);
        let mut weights = vec![1; 10];
        weights[0] = 5;
        for policy in BreakEdgePolicy::ALL {
            let walk = build_wpp(&base(10), &pos, &weights, policy);
            // No two consecutive occurrences of the VIP (which would be a
            // zero-length cycle).
            for i in 0..walk.len() {
                let j = (i + 1) % walk.len();
                assert!(
                    !(walk[i] == 0 && walk[j] == 0),
                    "{policy:?}: consecutive VIP copies at {i}"
                );
            }
        }
    }
}
