//! W-TCTP: the Weighted Target-Coverage Target-Patrolling planner (paper
//! §III).
//!
//! The planner augments the shared Hamiltonian circuit into a **Weighted
//! Patrolling Path** (WPP): for every VIP `g_i` with weight `w_i`, `w_i − 1`
//! *break edges* are removed from the path and their endpoints reconnected
//! to `g_i`, creating `w_i` cycles that all intersect at `g_i` (Definition
//! 3). In walk form this is simply inserting `w_i − 1` extra occurrences of
//! `g_i` into the cyclic visiting sequence.
//!
//! Two break-edge selection policies are provided (paper §3.1 A):
//!
//! * [`BreakEdgePolicy::ShortestLength`] — minimise the added path length
//!   (Exp. 1);
//! * [`BreakEdgePolicy::BalancingLength`] — make the `w_i` cycles as equal
//!   in length as possible (Exp. 2), so the VIP's visiting intervals are
//!   evenly spaced.
//!
//! Multiple VIPs are processed in descending weight order (§3.1 B). The
//! final traversal order is fixed by the counter-clockwise *patrolling rule*
//! (§3.2), so every mule walks the cycles of the WPP in the same order.

pub mod patrol_rule;
pub mod wpp;

use crate::deployment::assign_start_points;
use crate::hamiltonian::SharedCircuit;
use crate::plan::{MuleItinerary, PatrolPlan, PlanError, Waypoint};
use crate::planner::{validate_common, Planner};
use mule_graph::ChbConfig;
use mule_workload::Scenario;
use serde::{Deserialize, Serialize};

/// Break-edge selection policy (paper §3.1 A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BreakEdgePolicy {
    /// Minimise the total WPP length (Exp. 1).
    #[default]
    ShortestLength,
    /// Balance the lengths of the cycles created for each VIP (Exp. 2).
    BalancingLength,
}

impl BreakEdgePolicy {
    /// Both policies, for sweeps in the figure harness.
    pub const ALL: [BreakEdgePolicy; 2] = [
        BreakEdgePolicy::ShortestLength,
        BreakEdgePolicy::BalancingLength,
    ];

    /// Human-readable label used in report tables.
    pub fn label(&self) -> &'static str {
        match self {
            BreakEdgePolicy::ShortestLength => "shortest-length",
            BreakEdgePolicy::BalancingLength => "balancing-length",
        }
    }
}

/// The W-TCTP planner.
#[derive(Debug, Clone, Default)]
pub struct WTctp {
    /// Break-edge selection policy.
    pub policy: BreakEdgePolicy,
    /// Configuration of the underlying Hamiltonian-circuit construction.
    pub chb: ChbConfig,
}

impl WTctp {
    /// W-TCTP with the given policy and default circuit construction.
    pub fn new(policy: BreakEdgePolicy) -> Self {
        WTctp {
            policy,
            chb: ChbConfig::default(),
        }
    }

    /// Builder-style override of the circuit-construction configuration
    /// (pass budgets and exact/candidate-list search mode).
    pub fn with_chb(mut self, chb: ChbConfig) -> Self {
        self.chb = chb;
        self
    }

    /// Builds the weighted patrolling path for `scenario` and returns the
    /// walk as waypoints (shared by all mules). Exposed so RW-TCTP can reuse
    /// it and so benches can measure WPP length directly.
    pub fn build_wpp_waypoints(&self, scenario: &Scenario) -> Result<Vec<Waypoint>, PlanError> {
        let circuit = SharedCircuit::build(scenario, &self.chb).ok_or(PlanError::NoTargets)?;
        let positions = circuit.positions();
        let ids = circuit.node_ids();

        // Weight of each circuit waypoint, aligned with the circuit order.
        let field = scenario.field();
        let weights: Vec<u32> = ids
            .iter()
            .map(|id| field.node(*id).map(|n| n.weight.value()).unwrap_or(1))
            .collect();

        // The circuit walk over local indices 0..k is simply 0,1,2,…,k-1
        // because `positions` is already in traversal order.
        let base: Vec<usize> = (0..positions.len()).collect();
        let walk = wpp::build_wpp(&base, &positions, &weights, self.policy);

        // Canonical traversal order via the patrolling rule.
        let ordered = patrol_rule::order_walk_by_rule(&walk, &positions);

        Ok(ordered
            .into_iter()
            .map(|local| Waypoint::new(ids[local], positions[local]))
            .collect())
    }
}

impl Planner for WTctp {
    fn name(&self) -> &'static str {
        "W-TCTP"
    }

    fn plan(&self, scenario: &Scenario) -> Result<PatrolPlan, PlanError> {
        let _span = mule_obs::span_owned(|| format!("planner.{}", self.name()));
        validate_common(scenario)?;
        let waypoints = self.build_wpp_waypoints(scenario)?;
        let path = mule_geom::Polyline::closed(waypoints.iter().map(|w| w.position).collect());
        let deployments = assign_start_points(&path, scenario.mule_starts());

        let itineraries = scenario
            .mule_starts()
            .iter()
            .enumerate()
            .map(|(m, start)| {
                MuleItinerary::new(m, *start, waypoints.clone())
                    .with_entry_offset(deployments[m].entry_offset_m)
            })
            .collect();
        Ok(PatrolPlan::new(self.name(), itineraries).with_metric_geometry(scenario.metric()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_workload::{ScenarioConfig, WeightSpec};

    fn weighted_scenario(seed: u64, vips: usize, weight: u32) -> Scenario {
        ScenarioConfig::paper_default()
            .with_targets(15)
            .with_weights(WeightSpec::UniformVips {
                count: vips,
                weight,
            })
            .with_seed(seed)
            .generate()
    }

    #[test]
    fn wpp_visits_each_vip_weight_times_and_ntps_once() {
        for policy in BreakEdgePolicy::ALL {
            let s = weighted_scenario(4, 3, 3);
            let plan = WTctp::new(policy).plan(&s).unwrap();
            let it = &plan.itineraries[0];
            for node in s.field().patrolled_nodes() {
                assert_eq!(
                    it.visits_per_round(node.id),
                    node.weight.value() as usize,
                    "{policy:?}: node {} should be visited {} times",
                    node.id,
                    node.weight.value()
                );
            }
        }
    }

    #[test]
    fn unweighted_scenarios_reduce_to_the_plain_circuit() {
        let s = ScenarioConfig::paper_default().with_seed(9).generate();
        let plan = WTctp::new(BreakEdgePolicy::ShortestLength)
            .plan(&s)
            .unwrap();
        let it = &plan.itineraries[0];
        assert_eq!(it.cycle.len(), s.patrolled_positions().len());
    }

    #[test]
    fn shortest_policy_never_builds_a_longer_wpp_than_balancing() {
        for seed in [1, 2, 3, 4, 5] {
            let s = weighted_scenario(seed, 4, 3);
            let shortest = WTctp::new(BreakEdgePolicy::ShortestLength)
                .build_wpp_waypoints(&s)
                .unwrap();
            let balancing = WTctp::new(BreakEdgePolicy::BalancingLength)
                .build_wpp_waypoints(&s)
                .unwrap();
            let len = |w: &Vec<Waypoint>| {
                mule_geom::Polyline::closed(w.iter().map(|x| x.position).collect()).length()
            };
            assert!(
                len(&shortest) <= len(&balancing) + 1e-6,
                "seed {seed}: shortest {} vs balancing {}",
                len(&shortest),
                len(&balancing)
            );
        }
    }

    #[test]
    fn all_mules_share_the_same_wpp() {
        let s = weighted_scenario(7, 2, 4);
        let plan = WTctp::new(BreakEdgePolicy::BalancingLength)
            .plan(&s)
            .unwrap();
        let reference = &plan.itineraries[0].cycle;
        for it in &plan.itineraries {
            assert_eq!(&it.cycle, reference);
        }
        // Entry offsets are spread equally along the WPP.
        let total = plan.itineraries[0].cycle_length();
        let mut offsets: Vec<f64> = plan.itineraries.iter().map(|i| i.entry_offset_m).collect();
        offsets.sort_by(|a, b| a.total_cmp(b));
        let gap = total / plan.mule_count() as f64;
        for w in offsets.windows(2) {
            assert!((w[1] - w[0] - gap).abs() < 1e-6);
        }
    }

    #[test]
    fn plan_is_deterministic_and_errors_are_propagated() {
        let s = weighted_scenario(11, 3, 2);
        let a = WTctp::new(BreakEdgePolicy::ShortestLength)
            .plan(&s)
            .unwrap();
        let b = WTctp::new(BreakEdgePolicy::ShortestLength)
            .plan(&s)
            .unwrap();
        assert_eq!(a, b);

        let empty = ScenarioConfig::paper_default().with_mules(0).generate();
        assert_eq!(
            WTctp::new(BreakEdgePolicy::ShortestLength).plan(&empty),
            Err(PlanError::NoMules)
        );
    }

    #[test]
    fn policy_labels_and_default() {
        assert_eq!(BreakEdgePolicy::default(), BreakEdgePolicy::ShortestLength);
        assert_ne!(
            BreakEdgePolicy::ShortestLength.label(),
            BreakEdgePolicy::BalancingLength.label()
        );
        assert_eq!(
            WTctp::new(BreakEdgePolicy::BalancingLength).name(),
            "W-TCTP"
        );
    }
}
