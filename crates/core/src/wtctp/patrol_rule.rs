//! The counter-clockwise patrolling rule (paper §3.2).
//!
//! A weighted patrolling path is a multigraph in which every VIP of weight
//! `w` has degree `2w`. When a mule arrives at such a junction it must know
//! which of the outgoing edges to take, and *all* mules must make the same
//! choice or their visiting intervals diverge. The paper's rule:
//!
//! > When a DM arrives at a VIP `g_i` from target `g_j`, it selects a target
//! > `g_k` which has minimal included angle with the former route `g_j` to
//! > `g_i` in the counter-clockwise direction, as its next visiting target.
//!
//! [`next_by_rule`] implements that choice; [`order_walk_by_rule`] applies
//! it edge-by-edge to rebuild the full traversal order of a WPP from its
//! edge multiset, which is how every mule derives the same canonical walk.

use mule_geom::{ccw_included_angle, Point};

/// Selects, among `candidates` (indices into `positions`), the next target
/// according to the counter-clockwise patrolling rule, given that the mule
/// arrived at `at` coming from `from`. Returns the index *within
/// `candidates`* of the chosen target, or `None` when `candidates` is empty.
///
/// Ties (identical angles, e.g. duplicated points) are broken by the
/// smaller node index so the rule stays deterministic.
pub fn next_by_rule(
    positions: &[Point],
    from: usize,
    at: usize,
    candidates: &[usize],
) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    let mut best: Option<(usize, f64)> = None;
    for (slot, &cand) in candidates.iter().enumerate() {
        // Undefined angles (coincident points) sort last but remain
        // selectable so the traversal never gets stuck on degenerate input.
        let angle = ccw_included_angle(&positions[from], &positions[at], &positions[cand])
            .unwrap_or(f64::INFINITY);
        let better = match best {
            None => true,
            Some((best_slot, best_angle)) => {
                angle < best_angle - 1e-12
                    || ((angle - best_angle).abs() <= 1e-12
                        && candidates[slot] < candidates[best_slot])
            }
        };
        if better {
            best = Some((slot, angle));
        }
    }
    best.map(|(slot, _)| slot)
}

/// Rebuilds the canonical traversal order of a WPP walk by repeatedly
/// applying the patrolling rule to its edge multiset.
///
/// The walk's edges form a connected multigraph in which every vertex has
/// even degree, so an Eulerian circuit exists; the rule chooses which edge
/// to follow at every junction. If the greedy rule closes a sub-circuit
/// before consuming every edge (possible for geometrically degenerate
/// inputs), the function falls back to returning `walk` unchanged — the
/// visit-count invariants are identical either way.
pub fn order_walk_by_rule(walk: &[usize], positions: &[Point]) -> Vec<usize> {
    let n = walk.len();
    if n < 3 {
        return walk.to_vec();
    }

    // Edge multiset as adjacency lists of (neighbour, edge id).
    let mut adjacency: std::collections::HashMap<usize, Vec<(usize, usize)>> = Default::default();
    for i in 0..n {
        let a = walk[i];
        let b = walk[(i + 1) % n];
        adjacency.entry(a).or_default().push((b, i));
        adjacency.entry(b).or_default().push((a, i));
    }

    let mut used = vec![false; n];
    let start = walk[0];
    let second = walk[1];
    // Consume the first edge explicitly so the rule has an incoming
    // direction to measure angles against.
    used[0] = true;
    let mut order = vec![start, second];
    let mut from = start;
    let mut at = second;

    for _ in 2..n {
        let neighbours = adjacency.get(&at).cloned().unwrap_or_default();
        let available: Vec<(usize, usize)> = neighbours
            .into_iter()
            .filter(|&(_, edge)| !used[edge])
            .collect();
        let candidate_nodes: Vec<usize> = available.iter().map(|&(nb, _)| nb).collect();
        let Some(slot) = next_by_rule(positions, from, at, &candidate_nodes) else {
            // Stuck before consuming every edge: fall back to the original.
            return walk.to_vec();
        };
        let (next_node, edge) = available[slot];
        used[edge] = true;
        order.push(next_node);
        from = at;
        at = next_node;
    }

    // The last edge must close the circuit back to the start; if it does
    // not, the greedy traversal painted itself into a corner.
    let last_edge_ok = (0..n).filter(|&e| !used[e]).count() == 1;
    let closes = {
        let remaining: Vec<usize> = (0..n).filter(|&e| !used[e]).collect();
        remaining.len() == 1 && {
            let e = remaining[0];
            let a = walk[e];
            let b = walk[(e + 1) % n];
            (a == at && b == start) || (b == at && a == start)
        }
    };
    if last_edge_ok && closes && order.len() == n {
        // Drop nothing: `order` already lists n vertices; the closing edge
        // back to `start` is implicit in the cyclic representation.
        order
    } else {
        walk.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The geometry of the paper's Fig. 5: a mule moving from g5 to the VIP
    /// g4 must pick g3 (smallest CCW included angle), and one moving from
    /// g9 to g4 must pick g8.
    #[test]
    fn figure_5_choice_pattern() {
        // Index layout: 0=g4 (VIP at origin), 1=g3, 2=g5, 3=g8, 4=g9.
        // g5 approaches from the east, g3 leaves to the north-east,
        // g9 approaches from the west, g8 leaves to the south-west.
        let positions = vec![
            Point::new(0.0, 0.0),     // g4
            Point::new(30.0, 40.0),   // g3 (north-east of g4)
            Point::new(60.0, 0.0),    // g5 (east)
            Point::new(-30.0, -40.0), // g8 (south-west)
            Point::new(-60.0, 0.0),   // g9 (west)
        ];
        // Arriving from g5 (index 2) at g4, candidates g3 and g8.
        let slot = next_by_rule(&positions, 2, 0, &[1, 3]).unwrap();
        assert_eq!(slot, 0, "from g5 the rule picks g3");
        // Arriving from g9 (index 4) at g4, candidates g3 and g8.
        let slot = next_by_rule(&positions, 4, 0, &[1, 3]).unwrap();
        assert_eq!(slot, 1, "from g9 the rule picks g8");
    }

    #[test]
    fn empty_candidates_return_none_and_ties_break_by_index() {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(-10.0, 0.0),
        ];
        assert!(next_by_rule(&positions, 3, 0, &[]).is_none());
        // Candidates 1 and 2 are geometrically identical: pick index 1.
        let slot = next_by_rule(&positions, 3, 0, &[2, 1]).unwrap();
        assert_eq!([2, 1][slot], 1);
    }

    #[test]
    fn ordering_a_plain_circuit_preserves_its_vertex_multiset() {
        let positions: Vec<Point> = (0..8)
            .map(|i| {
                let t = std::f64::consts::TAU * i as f64 / 8.0;
                Point::new(100.0 * t.cos(), 100.0 * t.sin())
            })
            .collect();
        let walk: Vec<usize> = (0..8).collect();
        let ordered = order_walk_by_rule(&walk, &positions);
        assert_eq!(ordered.len(), walk.len());
        let mut a = ordered.clone();
        let mut b = walk.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(ordered[0], 0, "traversal starts at the walk's anchor");
    }

    #[test]
    fn ordering_a_weighted_walk_preserves_visit_counts() {
        // Ring of 6 targets with target 0 duplicated (weight 2) by inserting
        // it into the far edge (between 3 and 4).
        let positions: Vec<Point> = (0..6)
            .map(|i| {
                let t = std::f64::consts::TAU * i as f64 / 6.0;
                Point::new(200.0 * t.cos(), 200.0 * t.sin())
            })
            .collect();
        let walk = vec![0, 1, 2, 3, 0, 4, 5];
        let ordered = order_walk_by_rule(&walk, &positions);
        assert_eq!(ordered.len(), walk.len());
        for node in 0..6 {
            let expected = walk.iter().filter(|&&x| x == node).count();
            let got = ordered.iter().filter(|&&x| x == node).count();
            assert_eq!(got, expected, "node {node}");
        }
        // The edge multiset is preserved too (undirected).
        let edge_set = |w: &[usize]| {
            let mut edges: Vec<(usize, usize)> = (0..w.len())
                .map(|i| {
                    let a = w[i];
                    let b = w[(i + 1) % w.len()];
                    (a.min(b), a.max(b))
                })
                .collect();
            edges.sort_unstable();
            edges
        };
        assert_eq!(edge_set(&ordered), edge_set(&walk));
    }

    #[test]
    fn tiny_walks_are_returned_unchanged() {
        let positions = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        assert_eq!(order_walk_by_rule(&[0, 1], &positions), vec![0, 1]);
        assert_eq!(order_walk_by_rule(&[], &positions), Vec::<usize>::new());
    }
}
