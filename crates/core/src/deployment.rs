//! Location initialisation: spreading the mules over the patrolling path.
//!
//! B-TCTP (§2.2 B) partitions the circuit into `n` equal-length segments
//! anchored at the most north target, yielding `n` *start points*; each mule
//! then moves to "the closest start point", with conflicts resolved so that
//! "each start point exactly has one DM". The same step is reused verbatim
//! by W-TCTP and RW-TCTP (§3.2, §4.2).
//!
//! We resolve conflicts with a greedy global matching: all (mule, start
//! point) pairs are sorted by distance and accepted when both sides are
//! still free. This realises the paper's intent (each mule travels to a
//! nearby start point, every start point manned by exactly one mule) while
//! being deterministic and independent of mule iteration order.

use mule_geom::{Point, Polyline};

/// One mule's deployment decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deployment {
    /// Index of the start point assigned to this mule (0 is the path's
    /// anchor — the northmost node).
    pub start_point_index: usize,
    /// Arc-length offset of that start point along the path.
    pub entry_offset_m: f64,
    /// The start point's coordinates.
    pub entry_point: Point,
    /// Straight-line distance the mule must travel from its initial
    /// position to reach its start point.
    pub deployment_distance_m: f64,
}

/// Computes the equal-arc start points of `path` (one per mule) and assigns
/// each mule to exactly one of them.
///
/// Returns one [`Deployment`] per mule, in mule order. For an empty path or
/// an empty mule list the result is empty.
pub fn assign_start_points(path: &Polyline, mule_positions: &[Point]) -> Vec<Deployment> {
    let n = mule_positions.len();
    if n == 0 || path.is_empty() {
        return Vec::new();
    }
    let total = path.length();
    let offsets: Vec<f64> = (0..n).map(|i| total * i as f64 / n as f64).collect();
    let start_points: Vec<Point> = offsets
        .iter()
        .map(|&d| path.point_at(d).expect("path verified non-empty"))
        .collect();

    // Greedy minimum-distance matching.
    let mut pairs: Vec<(usize, usize, f64)> = Vec::with_capacity(n * n);
    for (m, mp) in mule_positions.iter().enumerate() {
        for (s, sp) in start_points.iter().enumerate() {
            pairs.push((m, s, mp.distance(sp)));
        }
    }
    pairs.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));

    let mut mule_taken = vec![false; n];
    let mut point_taken = vec![false; n];
    let mut assignment = vec![usize::MAX; n];
    let mut assigned = 0;
    for (m, s, _) in pairs {
        if assigned == n {
            break;
        }
        if !mule_taken[m] && !point_taken[s] {
            mule_taken[m] = true;
            point_taken[s] = true;
            assignment[m] = s;
            assigned += 1;
        }
    }

    assignment
        .into_iter()
        .enumerate()
        .map(|(m, s)| Deployment {
            start_point_index: s,
            entry_offset_m: offsets[s],
            entry_point: start_points[s],
            deployment_distance_m: mule_positions[m].distance(&start_points[s]),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_path() -> Polyline {
        Polyline::closed(vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 100.0),
            Point::new(0.0, 100.0),
        ])
    }

    #[test]
    fn start_points_are_equally_spaced_and_uniquely_assigned() {
        let path = square_path();
        let mules = vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 100.0),
            Point::new(0.0, 100.0),
        ];
        let d = assign_start_points(&path, &mules);
        assert_eq!(d.len(), 4);
        // Every start point index is used exactly once.
        let mut indices: Vec<usize> = d.iter().map(|x| x.start_point_index).collect();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2, 3]);
        // Offsets are i/n of the perimeter.
        let mut offsets: Vec<f64> = d.iter().map(|x| x.entry_offset_m).collect();
        offsets.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(offsets, vec![0.0, 100.0, 200.0, 300.0]);
        // Each mule starts at a corner, so its assigned point is its own
        // corner at distance zero.
        assert!(d.iter().all(|x| x.deployment_distance_m < 1e-9));
    }

    #[test]
    fn conflicting_mules_spread_out() {
        // All mules start at the same place; they still get distinct start
        // points.
        let path = square_path();
        let mules = vec![Point::new(0.0, 0.0); 4];
        let d = assign_start_points(&path, &mules);
        let mut indices: Vec<usize> = d.iter().map(|x| x.start_point_index).collect();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2, 3]);
        // Exactly one mule gets the zero-distance point; the others travel.
        let zero_distance = d.iter().filter(|x| x.deployment_distance_m < 1e-9).count();
        assert_eq!(zero_distance, 1);
    }

    #[test]
    fn single_mule_takes_the_anchor_point() {
        let path = square_path();
        let d = assign_start_points(&path, &[Point::new(500.0, 500.0)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].start_point_index, 0);
        assert_eq!(d[0].entry_offset_m, 0.0);
        assert_eq!(d[0].entry_point, Point::new(0.0, 0.0));
    }

    #[test]
    fn more_mules_than_path_vertices_still_get_distinct_offsets() {
        let path = square_path();
        let mules: Vec<Point> = (0..8).map(|i| Point::new(i as f64 * 10.0, -20.0)).collect();
        let d = assign_start_points(&path, &mules);
        assert_eq!(d.len(), 8);
        let mut offsets: Vec<f64> = d.iter().map(|x| x.entry_offset_m).collect();
        offsets.sort_by(|a, b| a.total_cmp(b));
        for w in offsets.windows(2) {
            assert!((w[1] - w[0] - 50.0).abs() < 1e-9, "offsets every 50 m");
        }
    }

    #[test]
    fn empty_inputs_yield_empty_deployments() {
        assert!(assign_start_points(&square_path(), &[]).is_empty());
        assert!(assign_start_points(&Polyline::closed(vec![]), &[Point::ORIGIN]).is_empty());
    }

    #[test]
    fn assignment_minimises_obvious_cases() {
        // Two mules near two opposite corners should take those corners.
        let path = square_path();
        let mules = vec![Point::new(5.0, 5.0), Point::new(95.0, 95.0)];
        let d = assign_start_points(&path, &mules);
        assert_eq!(d[0].entry_point, Point::new(0.0, 0.0));
        assert_eq!(d[1].entry_point, Point::new(100.0, 100.0));
    }
}
