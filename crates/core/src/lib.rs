//! # patrol-core
//!
//! The paper's contribution: target-patrolling planners for wireless mobile
//! data-mule networks, plus the baselines they are evaluated against.
//!
//! | Planner | Paper section | Idea |
//! |---------|---------------|------|
//! | [`BTctp`] | §II  | One shared Hamiltonian circuit (CHB), mules spread to equal-arc start points, then patrol in lock-step. |
//! | [`WTctp`] | §III | Weighted Patrolling Path: VIP targets get extra cycles via break-edge insertion (Shortest-Length or Balancing-Length policy); traversal order fixed by the counter-clockwise patrolling rule. |
//! | [`RwTctp`] | §IV | W-TCTP plus a Weighted Recharge Path spliced through the recharge station; mules take the recharge path every `r`-th round (Eq. 4). |
//! | [`baselines::RandomPlanner`] | §V | Each mule repeatedly visits a random permutation of the targets. |
//! | [`baselines::SweepPlanner`] | §V / ref \[4\] | Targets split into per-mule groups; each mule sweeps its own group. |
//! | [`baselines::ChbPlanner`] | §V / ref \[5\] | All mules follow the shared Hamiltonian circuit with no start-point spreading. |
//!
//! All planners implement the [`Planner`] trait: they consume a
//! [`mule_workload::Scenario`] and produce a [`PatrolPlan`] — one
//! [`MuleItinerary`] per mule — which the `mule-sim` crate then executes.
//!
//! ## Disruptions and online replanning
//!
//! Static plans assume the world the planner saw never changes. Dynamic
//! scenarios (see `mule_workload::disruption`) violate that mid-run:
//! targets fail, recover or arrive late, and mules break down. The
//! [`replan`] module closes the loop: the simulator hands a [`Replanner`] a
//! [`ReplanContext`] — the surviving targets, the surviving mules and their
//! current positions — and executes the fresh [`PatrolPlan`] it returns.
//! [`ReplanWithPlanner`] is the default strategy: re-run the original
//! planner on the restricted scenario, which mirrors the paper's
//! distributed-consistency argument (every mule derives the same new path
//! from the same shared knowledge). Custom [`Replanner`] implementations
//! can splice routes locally instead of replanning globally.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod baselines;
pub mod btctp;
pub mod deployment;
pub mod hamiltonian;
pub mod plan;
pub mod planner;
pub mod replan;
pub mod rwtctp;
pub mod wtctp;

pub use btctp::BTctp;
pub use plan::{MuleItinerary, PatrolPlan, PlanError, Waypoint};
pub use planner::Planner;
pub use replan::{ReplanContext, ReplanWithPlanner, Replanner};
pub use rwtctp::RwTctp;
pub use wtctp::{BreakEdgePolicy, WTctp};
