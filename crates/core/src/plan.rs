//! Patrol plans: the output of every planner and the input of the
//! simulator.
//!
//! A [`PatrolPlan`] holds one [`MuleItinerary`] per mule. An itinerary is a
//! *closed walk* over field nodes — the same node may appear several times,
//! which is how weighted patrolling paths visit a VIP `w_i` times per
//! traversal — plus the arc-length offset at which the mule enters the walk
//! (the B-TCTP start-point spreading) and the mule's physical start
//! position.

use mule_geom::{Point, Polyline};
use mule_net::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One stop of an itinerary: a field node and its position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Waypoint {
    /// The node visited at this stop.
    pub node: NodeId,
    /// Its location in the field.
    pub position: Point,
}

impl Waypoint {
    /// Creates a waypoint.
    pub fn new(node: NodeId, position: Point) -> Self {
        Waypoint { node, position }
    }
}

/// The route of a single mule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MuleItinerary {
    /// Index of the mule in the scenario's mule list.
    pub mule_index: usize,
    /// Where the mule is physically located before it starts patrolling.
    pub start_position: Point,
    /// The closed walk the mule repeats forever, in traversal order. The
    /// walk is closed implicitly: after the last waypoint the mule returns
    /// to the first.
    pub cycle: Vec<Waypoint>,
    /// Arc length along `cycle` (measured from its first waypoint) at which
    /// the mule enters the walk. The mule first travels in a straight line
    /// from `start_position` to that entry point, then patrols.
    pub entry_offset_m: f64,
}

impl MuleItinerary {
    /// Creates an itinerary entering the cycle at its first waypoint.
    pub fn new(mule_index: usize, start_position: Point, cycle: Vec<Waypoint>) -> Self {
        MuleItinerary {
            mule_index,
            start_position,
            cycle,
            entry_offset_m: 0.0,
        }
    }

    /// Sets the entry offset (wrapped into the cycle length by the
    /// simulator).
    pub fn with_entry_offset(mut self, offset_m: f64) -> Self {
        self.entry_offset_m = offset_m.max(0.0);
        self
    }

    /// The closed polyline over the waypoint positions.
    pub fn polyline(&self) -> Polyline {
        Polyline::closed(self.cycle.iter().map(|w| w.position).collect())
    }

    /// Total length of one traversal of the cycle, in metres.
    pub fn cycle_length(&self) -> f64 {
        self.polyline().length()
    }

    /// The point on the cycle where the mule enters (at
    /// [`MuleItinerary::entry_offset_m`]). Falls back to the start position
    /// for an empty cycle.
    pub fn entry_point(&self) -> Point {
        self.polyline()
            .point_at(self.entry_offset_m)
            .unwrap_or(self.start_position)
    }

    /// Number of times `node` is visited in one complete traversal.
    pub fn visits_per_round(&self, node: NodeId) -> usize {
        self.cycle.iter().filter(|w| w.node == node).count()
    }

    /// The distinct nodes covered by the itinerary.
    pub fn covered_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.cycle.iter().map(|w| w.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

/// A complete plan: one itinerary per mule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatrolPlan {
    /// Human-readable planner name ("B-TCTP", "CHB", …) for reports.
    pub planner_name: String,
    /// One itinerary per mule, in mule-index order.
    pub itineraries: Vec<MuleItinerary>,
}

impl PatrolPlan {
    /// Creates a plan.
    pub fn new(planner_name: impl Into<String>, itineraries: Vec<MuleItinerary>) -> Self {
        PatrolPlan {
            planner_name: planner_name.into(),
            itineraries,
        }
    }

    /// Number of mules covered by the plan.
    pub fn mule_count(&self) -> usize {
        self.itineraries.len()
    }

    /// Length of the longest per-mule cycle — the |P| that dominates the
    /// visiting interval bound.
    pub fn max_cycle_length(&self) -> f64 {
        self.itineraries
            .iter()
            .map(MuleItinerary::cycle_length)
            .fold(0.0, f64::max)
    }

    /// All distinct nodes covered by at least one itinerary.
    pub fn covered_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .itineraries
            .iter()
            .flat_map(|i| i.covered_nodes())
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

/// Why a planner could not produce a plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanError {
    /// The scenario has no patrolled nodes at all.
    NoTargets,
    /// The scenario has no mules.
    NoMules,
    /// The planner requires a recharge station but the scenario has none.
    MissingRechargeStation,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoTargets => write!(f, "scenario contains no targets to patrol"),
            PlanError::NoMules => write!(f, "scenario contains no data mules"),
            PlanError::MissingRechargeStation => {
                write!(
                    f,
                    "planner requires a recharge station but the scenario has none"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_itinerary(mule: usize) -> MuleItinerary {
        let cycle = vec![
            Waypoint::new(NodeId(0), Point::new(0.0, 0.0)),
            Waypoint::new(NodeId(1), Point::new(10.0, 0.0)),
            Waypoint::new(NodeId(2), Point::new(10.0, 10.0)),
            Waypoint::new(NodeId(1), Point::new(10.0, 0.0)),
            Waypoint::new(NodeId(3), Point::new(0.0, 10.0)),
        ];
        MuleItinerary::new(mule, Point::new(-5.0, -5.0), cycle)
    }

    #[test]
    fn cycle_length_and_polyline_agree() {
        let it = square_itinerary(0);
        assert!((it.cycle_length() - it.polyline().length()).abs() < 1e-12);
        assert!(it.cycle_length() > 0.0);
    }

    #[test]
    fn visits_per_round_counts_repeated_nodes() {
        let it = square_itinerary(0);
        assert_eq!(it.visits_per_round(NodeId(1)), 2);
        assert_eq!(it.visits_per_round(NodeId(0)), 1);
        assert_eq!(it.visits_per_round(NodeId(9)), 0);
        assert_eq!(
            it.covered_nodes(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn entry_point_walks_the_offset_and_clamps_empty_cycles() {
        let it = square_itinerary(0).with_entry_offset(10.0);
        // 10 m from (0,0) along the walk: exactly at (10, 0).
        assert_eq!(it.entry_point(), Point::new(10.0, 0.0));
        // Negative offsets are clamped to zero.
        let zero = square_itinerary(0).with_entry_offset(-3.0);
        assert_eq!(zero.entry_offset_m, 0.0);
        let empty = MuleItinerary::new(1, Point::new(2.0, 3.0), vec![]);
        assert_eq!(empty.entry_point(), Point::new(2.0, 3.0));
    }

    #[test]
    fn plan_aggregates_across_itineraries() {
        let plan = PatrolPlan::new("test", vec![square_itinerary(0), square_itinerary(1)]);
        assert_eq!(plan.mule_count(), 2);
        assert!(plan.max_cycle_length() > 0.0);
        assert_eq!(plan.covered_nodes().len(), 4);
        assert_eq!(plan.planner_name, "test");
    }

    #[test]
    fn plan_error_messages_are_informative() {
        assert!(PlanError::NoTargets.to_string().contains("no targets"));
        assert!(PlanError::NoMules.to_string().contains("no data mules"));
        assert!(PlanError::MissingRechargeStation
            .to_string()
            .contains("recharge station"));
    }
}
