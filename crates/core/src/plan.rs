//! Patrol plans: the output of every planner and the input of the
//! simulator.
//!
//! A [`PatrolPlan`] holds one [`MuleItinerary`] per mule. An itinerary is a
//! *closed walk* over field nodes — the same node may appear several times,
//! which is how weighted patrolling paths visit a VIP `w_i` times per
//! traversal — plus the arc-length offset at which the mule enters the walk
//! (the B-TCTP start-point spreading) and the mule's physical start
//! position.
//!
//! Under a road metric, an itinerary additionally carries the **leg
//! geometry**: for each consecutive waypoint pair, the road polyline the
//! mule physically drives. [`MuleItinerary::polyline`],
//! [`MuleItinerary::cycle_length`] and the simulator all follow that
//! geometry, so arrival times, traces and renders see real roads instead of
//! straight chords. Euclidean plans carry no leg paths and behave — byte
//! for byte — as they always did.

use mule_geom::{Point, Polyline};
use mule_net::NodeId;
use mule_road::TravelMetric;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One stop of an itinerary: a field node and its position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Waypoint {
    /// The node visited at this stop.
    pub node: NodeId,
    /// Its location in the field.
    pub position: Point,
}

impl Waypoint {
    /// Creates a waypoint.
    pub fn new(node: NodeId, position: Point) -> Self {
        Waypoint { node, position }
    }
}

/// The route of a single mule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MuleItinerary {
    /// Index of the mule in the scenario's mule list.
    pub mule_index: usize,
    /// Where the mule is physically located before it starts patrolling.
    pub start_position: Point,
    /// The closed walk the mule repeats forever, in traversal order. The
    /// walk is closed implicitly: after the last waypoint the mule returns
    /// to the first.
    pub cycle: Vec<Waypoint>,
    /// Arc length along `cycle` (measured from its first waypoint) at which
    /// the mule enters the walk. The mule first travels in a straight line
    /// from `start_position` to that entry point, then patrols. With leg
    /// geometry present, the arc length is measured along the *expanded*
    /// polyline (real road metres).
    pub entry_offset_m: f64,
    /// Per-leg travel geometry: `leg_paths[i]` holds the intermediate
    /// points the mule passes between `cycle[i]` and `cycle[(i + 1) % n]`.
    /// Empty (the default) means every leg is the straight chord — the
    /// Euclidean representation, unchanged from before road metrics.
    pub leg_paths: Vec<Vec<Point>>,
}

impl MuleItinerary {
    /// Creates an itinerary entering the cycle at its first waypoint, with
    /// straight (chord) legs.
    pub fn new(mule_index: usize, start_position: Point, cycle: Vec<Waypoint>) -> Self {
        MuleItinerary {
            mule_index,
            start_position,
            cycle,
            entry_offset_m: 0.0,
            leg_paths: Vec::new(),
        }
    }

    /// Sets the entry offset (wrapped into the cycle length by the
    /// simulator).
    pub fn with_entry_offset(mut self, offset_m: f64) -> Self {
        self.entry_offset_m = offset_m.max(0.0);
        self
    }

    /// The full travel geometry of one traversal: every waypoint followed
    /// by its leg's intermediate points. Without leg paths this is exactly
    /// the waypoint positions.
    pub fn expanded_points(&self) -> Vec<Point> {
        if self.leg_paths.is_empty() {
            return self.cycle.iter().map(|w| w.position).collect();
        }
        let mut points = Vec::with_capacity(self.cycle.len() + self.leg_paths.len());
        for (i, w) in self.cycle.iter().enumerate() {
            points.push(w.position);
            if let Some(leg) = self.leg_paths.get(i) {
                points.extend(leg.iter().copied());
            }
        }
        points
    }

    /// The closed polyline the mule physically travels (waypoints plus any
    /// leg geometry).
    pub fn polyline(&self) -> Polyline {
        Polyline::closed(self.expanded_points())
    }

    /// Replaces the leg geometry with `metric`'s paths and rescales the
    /// entry offset so the mule keeps its *fractional* position along the
    /// cycle (B-TCTP's `i/n` spreading is exact under the rescale). A
    /// no-op for the Euclidean metric.
    pub fn with_metric_geometry(mut self, metric: &TravelMetric) -> Self {
        if metric.is_euclidean() || self.cycle.len() < 2 {
            return self;
        }
        let chord_length = self.cycle_length();
        let n = self.cycle.len();
        self.leg_paths = (0..n)
            .map(|i| {
                let a = self.cycle[i].position;
                let b = self.cycle[(i + 1) % n].position;
                metric.leg_path(&a, &b)
            })
            .collect();
        if chord_length > 1e-9 {
            let fraction = self.entry_offset_m / chord_length;
            self.entry_offset_m = fraction * self.cycle_length();
        }
        self
    }

    /// Total length of one traversal of the cycle, in metres.
    pub fn cycle_length(&self) -> f64 {
        self.polyline().length()
    }

    /// The point on the cycle where the mule enters (at
    /// [`MuleItinerary::entry_offset_m`]). Falls back to the start position
    /// for an empty cycle.
    pub fn entry_point(&self) -> Point {
        self.polyline()
            .point_at(self.entry_offset_m)
            .unwrap_or(self.start_position)
    }

    /// Number of times `node` is visited in one complete traversal.
    pub fn visits_per_round(&self, node: NodeId) -> usize {
        self.cycle.iter().filter(|w| w.node == node).count()
    }

    /// The distinct nodes covered by the itinerary.
    pub fn covered_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.cycle.iter().map(|w| w.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

/// A complete plan: one itinerary per mule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatrolPlan {
    /// Human-readable planner name ("B-TCTP", "CHB", …) for reports.
    pub planner_name: String,
    /// One itinerary per mule, in mule-index order.
    pub itineraries: Vec<MuleItinerary>,
}

impl PatrolPlan {
    /// Creates a plan.
    pub fn new(planner_name: impl Into<String>, itineraries: Vec<MuleItinerary>) -> Self {
        PatrolPlan {
            planner_name: planner_name.into(),
            itineraries,
        }
    }

    /// Number of mules covered by the plan.
    pub fn mule_count(&self) -> usize {
        self.itineraries.len()
    }

    /// Length of the longest per-mule cycle — the |P| that dominates the
    /// visiting interval bound.
    pub fn max_cycle_length(&self) -> f64 {
        self.itineraries
            .iter()
            .map(MuleItinerary::cycle_length)
            .fold(0.0, f64::max)
    }

    /// Applies `metric`'s leg geometry to every itinerary (see
    /// [`MuleItinerary::with_metric_geometry`]). Every planner calls this
    /// as its final step, so a plan built over a road scenario always
    /// describes real road motion. A no-op for Euclidean scenarios —
    /// their plans stay byte-identical to the pre-road era.
    pub fn with_metric_geometry(mut self, metric: &TravelMetric) -> Self {
        if metric.is_euclidean() {
            return self;
        }
        self.itineraries = self
            .itineraries
            .into_iter()
            .map(|it| it.with_metric_geometry(metric))
            .collect();
        self
    }

    /// All distinct nodes covered by at least one itinerary.
    pub fn covered_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .itineraries
            .iter()
            .flat_map(|i| i.covered_nodes())
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

/// Why a planner could not produce a plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanError {
    /// The scenario has no patrolled nodes at all.
    NoTargets,
    /// The scenario has no mules.
    NoMules,
    /// The planner requires a recharge station but the scenario has none.
    MissingRechargeStation,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoTargets => write!(f, "scenario contains no targets to patrol"),
            PlanError::NoMules => write!(f, "scenario contains no data mules"),
            PlanError::MissingRechargeStation => {
                write!(
                    f,
                    "planner requires a recharge station but the scenario has none"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_itinerary(mule: usize) -> MuleItinerary {
        let cycle = vec![
            Waypoint::new(NodeId(0), Point::new(0.0, 0.0)),
            Waypoint::new(NodeId(1), Point::new(10.0, 0.0)),
            Waypoint::new(NodeId(2), Point::new(10.0, 10.0)),
            Waypoint::new(NodeId(1), Point::new(10.0, 0.0)),
            Waypoint::new(NodeId(3), Point::new(0.0, 10.0)),
        ];
        MuleItinerary::new(mule, Point::new(-5.0, -5.0), cycle)
    }

    #[test]
    fn cycle_length_and_polyline_agree() {
        let it = square_itinerary(0);
        assert!((it.cycle_length() - it.polyline().length()).abs() < 1e-12);
        assert!(it.cycle_length() > 0.0);
    }

    #[test]
    fn visits_per_round_counts_repeated_nodes() {
        let it = square_itinerary(0);
        assert_eq!(it.visits_per_round(NodeId(1)), 2);
        assert_eq!(it.visits_per_round(NodeId(0)), 1);
        assert_eq!(it.visits_per_round(NodeId(9)), 0);
        assert_eq!(
            it.covered_nodes(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn entry_point_walks_the_offset_and_clamps_empty_cycles() {
        let it = square_itinerary(0).with_entry_offset(10.0);
        // 10 m from (0,0) along the walk: exactly at (10, 0).
        assert_eq!(it.entry_point(), Point::new(10.0, 0.0));
        // Negative offsets are clamped to zero.
        let zero = square_itinerary(0).with_entry_offset(-3.0);
        assert_eq!(zero.entry_offset_m, 0.0);
        let empty = MuleItinerary::new(1, Point::new(2.0, 3.0), vec![]);
        assert_eq!(empty.entry_point(), Point::new(2.0, 3.0));
    }

    #[test]
    fn plan_aggregates_across_itineraries() {
        let plan = PatrolPlan::new("test", vec![square_itinerary(0), square_itinerary(1)]);
        assert_eq!(plan.mule_count(), 2);
        assert!(plan.max_cycle_length() > 0.0);
        assert_eq!(plan.covered_nodes().len(), 4);
        assert_eq!(plan.planner_name, "test");
    }

    #[test]
    fn expanded_points_interleave_leg_geometry() {
        let mut it = square_itinerary(0);
        assert_eq!(it.expanded_points().len(), it.cycle.len());
        // Fake road geometry: one bend on the first leg.
        it.leg_paths = vec![vec![]; it.cycle.len()];
        it.leg_paths[0] = vec![Point::new(5.0, -2.0)];
        let expanded = it.expanded_points();
        assert_eq!(expanded.len(), it.cycle.len() + 1);
        assert_eq!(expanded[1], Point::new(5.0, -2.0));
        assert!(it.cycle_length() > square_itinerary(0).cycle_length());
    }

    #[test]
    fn euclidean_metric_geometry_is_a_no_op() {
        let it = square_itinerary(0).with_entry_offset(7.0);
        let same = it.clone().with_metric_geometry(&TravelMetric::Euclidean);
        assert_eq!(it, same);
        let plan = PatrolPlan::new("test", vec![square_itinerary(0)]);
        assert_eq!(
            plan.clone().with_metric_geometry(&TravelMetric::Euclidean),
            plan
        );
    }

    #[test]
    fn road_metric_geometry_rescales_the_entry_fraction() {
        use mule_geom::BoundingBox;
        let index = mule_road::RoadIndex::for_field(
            mule_road::RoadNetKind::Grid,
            &BoundingBox::square(800.0),
            4,
        );
        let metric = TravelMetric::road(index);
        let snap = |x: f64, y: f64| {
            metric
                .road_index()
                .unwrap()
                .snap_position(&Point::new(x, y))
        };
        let cycle = vec![
            Waypoint::new(NodeId(0), snap(100.0, 100.0)),
            Waypoint::new(NodeId(1), snap(700.0, 120.0)),
            Waypoint::new(NodeId(2), snap(400.0, 650.0)),
        ];
        let it = MuleItinerary::new(0, snap(100.0, 100.0), cycle);
        let chord_len = it.cycle_length();
        let half_way = it.clone().with_entry_offset(chord_len / 2.0);

        let road_it = half_way.with_metric_geometry(&metric);
        assert!(!road_it.leg_paths.is_empty());
        assert_eq!(road_it.leg_paths.len(), road_it.cycle.len());
        let road_len = road_it.cycle_length();
        assert!(road_len >= chord_len - 1e-9, "roads never beat the chord");
        assert!(
            (road_it.entry_offset_m - road_len / 2.0).abs() < 1e-6,
            "the 1/2 entry fraction is preserved on the road cycle"
        );
        // The expanded polyline still starts at the first waypoint.
        assert_eq!(road_it.expanded_points()[0], road_it.cycle[0].position);
    }

    #[test]
    fn plan_error_messages_are_informative() {
        assert!(PlanError::NoTargets.to_string().contains("no targets"));
        assert!(PlanError::NoMules.to_string().contains("no data mules"));
        assert!(PlanError::MissingRechargeStation
            .to_string()
            .contains("recharge station"));
    }
}
