//! # mule-par
//!
//! A dependency-free parallel executor for embarrassingly parallel work:
//! scoped [`std::thread`] worker pools that map a function over an index
//! range (or a slice, or an owned `Vec`) and return the results **in input
//! order**, bit-identically to a sequential run.
//!
//! Replication sweeps dominate this workspace's runtime — Monte Carlo
//! replications, bench figure grids, dynamics scenario sweeps — and every
//! item of those sweeps is an independent, pure function of its seed. This
//! crate executes them that way. The `rayon` shim's prelude delegates to
//! [`parallel_map_indexed`], so existing `par_iter().map(...).collect()`
//! call sites go parallel without churn.
//!
//! ## Execution model
//!
//! * **Scoped workers.** Each parallel map spawns up to
//!   [`resolve_workers`]`()` threads inside a [`std::thread::scope`]; the
//!   workers borrow the closure and input directly (no `'static` bounds,
//!   no channels) and are joined before the call returns.
//! * **Chunked work-stealing.** Workers repeatedly claim the next chunk of
//!   the index range from a shared atomic cursor, so an unlucky worker
//!   stuck on a slow item does not serialise the sweep. Chunks are
//!   contiguous index ranges; each index is computed exactly once.
//! * **Deterministic output order.** Results are reassembled by input
//!   index before returning, so callers observe exactly the sequential
//!   result — only faster. Scheduling (which worker computes which chunk)
//!   is *not* deterministic, which is why closures must be pure.
//! * **No nested oversubscription.** A parallel map issued from inside a
//!   worker thread runs inline (sequentially) on that worker, so nesting a
//!   parallel replication sweep inside a parallel figure grid is bounded by
//!   one pool's worth of threads, not workers².
//!
//! Beyond the scoped maps, [`pool::TaskPool`] provides **long-lived**
//! workers for job streams that outlive any one call — `mule-serve` runs
//! its connection handlers on one — with a join-on-drop shutdown
//! contract.
//!
//! ## Worker-count resolution
//!
//! [`resolve_workers`] picks the pool size from, in priority order:
//!
//! 1. an explicit per-call override (`Some(n)` passed by the caller, e.g.
//!    `patrolctl sweep --workers N`),
//! 2. the process-wide default set with [`set_default_workers`],
//! 3. the `MULE_PAR_WORKERS` environment variable,
//! 4. [`std::thread::available_parallelism`].
//!
//! Forcing a single worker (any of the above = 1) reproduces the exact
//! sequential behaviour — the determinism tests rely on this.
//!
//! ```
//! let squares = mule_par::parallel_map_indexed(100, |i| i * i);
//! assert_eq!(squares[7], 49);
//! assert_eq!(squares.len(), 100);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod pool;

pub use pool::TaskPool;

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The environment variable consulted for the default worker count.
pub const WORKERS_ENV_VAR: &str = "MULE_PAR_WORKERS";

/// How many chunks each worker should see on average; more chunks give
/// better load balancing at slightly higher cursor contention.
const CHUNKS_PER_WORKER: usize = 4;

/// Process-wide default worker count (0 = unset).
static DEFAULT_WORKERS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while the current thread is a pool worker, so nested parallel
    /// maps run inline instead of spawning a second tier of threads.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Returns `true` when called from inside a pool worker thread (nested
/// parallel maps run sequentially there).
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Sets (or with `None` clears) the process-wide default worker count,
/// overriding the `MULE_PAR_WORKERS` environment variable. Zero counts are
/// treated as `None`.
pub fn set_default_workers(workers: Option<usize>) {
    DEFAULT_WORKERS.store(workers.unwrap_or(0), Ordering::Relaxed);
}

/// Resolves the worker count for a parallel call.
///
/// Priority: `explicit` override → [`set_default_workers`] →
/// `MULE_PAR_WORKERS` → [`std::thread::available_parallelism`] (→ 1 when
/// even that is unavailable). The result is always ≥ 1.
pub fn resolve_workers(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit.filter(|&n| n > 0) {
        return n;
    }
    let configured = DEFAULT_WORKERS.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    if let Some(n) = std::env::var(WORKERS_ENV_VAR)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Chunk size giving each worker ~[`CHUNKS_PER_WORKER`] chunks.
fn chunk_size(len: usize, workers: usize) -> usize {
    len.div_ceil(workers.saturating_mul(CHUNKS_PER_WORKER).max(1))
        .max(1)
}

/// Maps `f` over `0..len` on `workers` threads and returns the results in
/// index order. `workers = 1` (or `len ≤ 1`, or a call from inside a pool
/// worker) degenerates to the plain sequential loop, producing the exact
/// same output — parallel and sequential runs are interchangeable as long
/// as `f` is a pure function of its index.
pub fn parallel_map_indexed_with<R, F>(workers: usize, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.max(1).min(len.max(1));
    // Trace-level fan-out facts, recorded on the coordinating thread (the
    // worker count is environment-dependent, so it is a gauge — excluded
    // from span counters and therefore from determinism pins only insofar
    // as gauges are compared; shape tests that include gauges must force a
    // worker count).
    mule_obs::add("par_tasks", len as u64);
    mule_obs::gauge("par.workers", workers as i64);
    if workers <= 1 || len <= 1 || in_worker() {
        return (0..len).map(f).collect();
    }

    let chunk = chunk_size(len, workers);
    let cursor = AtomicUsize::new(0);
    // Workers push (chunk start, chunk results); reassembled by start
    // index below so the output is in input order regardless of which
    // worker claimed which chunk.
    let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                IN_WORKER.with(|w| w.set(true));
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let end = (start + chunk).min(len);
                    let out: Vec<R> = (start..end).map(&f).collect();
                    parts
                        .lock()
                        .expect("result mutex poisoned")
                        .push((start, out));
                }
                IN_WORKER.with(|w| w.set(false));
            });
        }
    });

    let mut parts = parts.into_inner().expect("result mutex poisoned");
    parts.sort_unstable_by_key(|&(start, _)| start);
    let mut results = Vec::with_capacity(len);
    for (_, mut part) in parts {
        results.append(&mut part);
    }
    debug_assert_eq!(results.len(), len);
    results
}

/// [`parallel_map_indexed_with`] with the worker count from
/// [`resolve_workers`]`(None)`.
pub fn parallel_map_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    parallel_map_indexed_with(resolve_workers(None), len, f)
}

/// Maps `f` over the items of a slice in parallel, returning results in
/// input order.
pub fn parallel_map_slice<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_indexed(items.len(), |i| f(&items[i]))
}

/// Maps `f` over an owned `Vec` by value in parallel, returning results in
/// input order.
///
/// Unlike the index-range maps this uses a static partition (the input is
/// split into one contiguous chunk per worker up front), because moving
/// values out of the shared input safely requires handing each worker its
/// own chunk. Sweeps with skewed per-item cost should prefer the
/// work-stealing [`parallel_map_indexed`] over borrowed data.
pub fn parallel_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    let workers = resolve_workers(None).min(len.max(1));
    if workers <= 1 || len <= 1 || in_worker() {
        return items.into_iter().map(f).collect();
    }

    let per_chunk = len.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<T> = iter.by_ref().take(per_chunk).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }

    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    let out: Vec<R> = chunk.into_iter().map(f).collect();
                    IN_WORKER.with(|w| w.set(false));
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("pool worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_map_matches_sequential_for_every_worker_count() {
        let expected: Vec<usize> = (0..257).map(|i| i * 3 + 1).collect();
        for workers in [1, 2, 3, 4, 7, 16, 1000] {
            let got = parallel_map_indexed_with(workers, 257, |i| i * 3 + 1);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn empty_and_single_item_ranges_work() {
        assert!(parallel_map_indexed_with(8, 0, |i| i).is_empty());
        assert_eq!(parallel_map_indexed_with(8, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn slice_map_preserves_input_order() {
        let items: Vec<i64> = (0..100).rev().collect();
        let doubled = parallel_map_slice(&items, |&x| x * 2);
        let expected: Vec<i64> = items.iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, expected);
    }

    #[test]
    fn vec_map_moves_values_and_preserves_order() {
        let items: Vec<String> = (0..50).map(|i| format!("item-{i}")).collect();
        let lens = parallel_map_vec(items.clone(), |s| s.len());
        let expected: Vec<usize> = items.iter().map(String::len).collect();
        assert_eq!(lens, expected);
    }

    #[test]
    fn nested_parallel_maps_run_inline_on_workers() {
        // The outer map uses several workers; the inner map must detect it
        // is on a worker thread and stay sequential (and correct).
        let grid = parallel_map_indexed_with(4, 8, |row| {
            assert!(in_worker() || resolve_workers(None) == 1);
            parallel_map_indexed_with(4, 8, move |col| row * 8 + col)
        });
        for (row, inner) in grid.iter().enumerate() {
            let expected: Vec<usize> = (0..8).map(|col| row * 8 + col).collect();
            assert_eq!(inner, &expected);
        }
    }

    #[test]
    fn chunk_size_is_positive_and_covers_the_range() {
        for len in [1usize, 2, 7, 64, 1000] {
            for workers in [1usize, 2, 8, 64] {
                let c = chunk_size(len, workers);
                assert!(c >= 1);
                assert!(c * workers * CHUNKS_PER_WORKER >= len);
            }
        }
    }

    #[test]
    fn explicit_override_beats_everything() {
        assert_eq!(resolve_workers(Some(3)), 3);
        assert_eq!(resolve_workers(Some(1)), 1);
        // Zero is "no override".
        assert!(resolve_workers(Some(0)) >= 1);
    }

    #[test]
    fn default_workers_can_be_set_and_cleared() {
        set_default_workers(Some(2));
        assert_eq!(resolve_workers(None), 2);
        assert_eq!(resolve_workers(Some(5)), 5, "explicit still wins");
        set_default_workers(None);
        assert!(resolve_workers(None) >= 1);
    }

    #[test]
    fn results_are_deterministic_across_repeated_parallel_runs() {
        let a = parallel_map_indexed_with(8, 500, |i| (i as f64).sqrt());
        let b = parallel_map_indexed_with(8, 500, |i| (i as f64).sqrt());
        let c = parallel_map_indexed_with(1, 500, |i| (i as f64).sqrt());
        assert_eq!(a, b);
        assert_eq!(a, c, "parallel equals sequential bit-for-bit");
    }
}
