//! A long-lived task pool: spawn heterogeneous jobs onto a fixed set of
//! worker threads and join every worker on shutdown.
//!
//! The parallel maps in the crate root are *scoped*: they spawn workers,
//! drain one index range, and join before returning — perfect for sweeps,
//! useless for a server that must run an unbounded stream of independent
//! jobs (connection handlers) over its whole lifetime. [`TaskPool`] fills
//! that gap:
//!
//! * [`TaskPool::spawn`] enqueues a boxed `FnOnce` job; an idle worker
//!   picks it up in FIFO order.
//! * Dropping the pool is the shutdown protocol: workers finish the
//!   already-queued jobs, then exit, and `Drop` **joins every worker**
//!   before returning — no detached threads survive the pool.
//! * A panicking job does not kill its worker: the panic is caught,
//!   counted (see [`TaskPool::panic_count`]) and the worker moves on to
//!   the next job. A server must not lose capacity because one handler
//!   panicked.
//!
//! Unlike the scoped maps, pool workers do **not** set the in-worker flag:
//! a job may itself issue a parallel map (e.g. a `/v1/simulate` handler
//! running a replication sweep), and that map should still parallelise on
//! its own scoped pool rather than degrade to sequential execution.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A job submitted to the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its workers.
struct Shared {
    state: Mutex<QueueState>,
    available: Condvar,
    /// Jobs that panicked (caught, worker kept alive).
    panics: AtomicUsize,
    /// Workers that have fully exited their run loop (used by tests to
    /// prove the drop-join contract).
    exited: AtomicUsize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// A fixed-size pool of long-lived worker threads executing submitted
/// jobs in FIFO order. See the module docs for the shutdown contract.
pub struct TaskPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for TaskPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskPool")
            .field("workers", &self.workers.len())
            .field("pending", &self.pending())
            .finish()
    }
}

impl TaskPool {
    /// Starts a pool with `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            panics: AtomicUsize::new(0),
            exited: AtomicUsize::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        TaskPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of jobs queued and not yet started.
    pub fn pending(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool mutex poisoned")
            .jobs
            .len()
    }

    /// Number of jobs that panicked so far (the panics are caught; the
    /// workers survive).
    pub fn panic_count(&self) -> usize {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Enqueues a job. An idle worker runs it as soon as possible; jobs
    /// submitted before a shutdown are guaranteed to run before the pool's
    /// `Drop` returns.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, job: F) {
        let mut state = self.shared.state.lock().expect("pool mutex poisoned");
        state.jobs.push_back(Box::new(job));
        drop(state);
        self.shared.available.notify_one();
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool mutex poisoned");
            state.shutdown = true;
        }
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            // A worker that panicked outside a job (impossible by
            // construction, but join is fallible) must not abort the drop
            // of the remaining handles.
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool mutex poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    // Queue drained and shutdown requested: exit.
                    shared.exited.fetch_add(1, Ordering::SeqCst);
                    return;
                }
                state = shared.available.wait(state).expect("pool mutex poisoned");
            }
        };
        // The `par.job` fault point sits inside the panic guard, so an
        // injected panic at job dispatch exercises exactly the recovery
        // path a buggy job would: counted, worker survives.
        let guarded = catch_unwind(AssertUnwindSafe(|| {
            let _ = mule_fault::point("par.job");
            job();
        }));
        if guarded.is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_drop_joins_every_worker() {
        let ran = Arc::new(AtomicUsize::new(0));
        let pool = TaskPool::new(4);
        assert_eq!(pool.workers(), 4);
        let shared = Arc::clone(&pool.shared);
        for _ in 0..64 {
            let ran = Arc::clone(&ran);
            pool.spawn(move || {
                std::thread::sleep(Duration::from_micros(200));
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        // Drop returns only after every queued job ran and every worker
        // exited its loop — the join-on-shutdown contract.
        assert_eq!(ran.load(Ordering::SeqCst), 64);
        assert_eq!(shared.exited.load(Ordering::SeqCst), 4);
        assert!(shared.state.lock().unwrap().jobs.is_empty());
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = TaskPool::new(0);
        assert_eq!(pool.workers(), 1);
        let done2 = Arc::clone(&done);
        pool.spawn(move || {
            done2.fetch_add(1, Ordering::SeqCst);
        });
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn panicking_jobs_are_counted_and_do_not_kill_workers() {
        let ran = Arc::new(AtomicUsize::new(0));
        let pool = TaskPool::new(1);
        pool.spawn(|| panic!("handler bug"));
        let ran2 = Arc::clone(&ran);
        // The single worker must survive the panic to run this job.
        pool.spawn(move || {
            ran2.fetch_add(1, Ordering::SeqCst);
        });
        let shared = Arc::clone(&pool.shared);
        drop(pool);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(shared.panics.load(Ordering::Relaxed), 1);
        assert_eq!(shared.exited.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn an_idle_pool_shuts_down_immediately() {
        let pool = TaskPool::new(3);
        let shared = Arc::clone(&pool.shared);
        drop(pool);
        assert_eq!(shared.exited.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn jobs_can_run_nested_parallel_maps() {
        // A pool job issuing a scoped parallel map must still parallelise
        // correctly (pool workers do not set the in-worker flag).
        let pool = TaskPool::new(2);
        let result = Arc::new(Mutex::new(Vec::new()));
        let result2 = Arc::clone(&result);
        pool.spawn(move || {
            let squares = crate::parallel_map_indexed_with(2, 10, |i| i * i);
            *result2.lock().unwrap() = squares;
        });
        drop(pool);
        let expected: Vec<usize> = (0..10).map(|i| i * i).collect();
        assert_eq!(*result.lock().unwrap(), expected);
    }
}
