//! Fault-injection coverage for the task pool. This lives in its own
//! integration-test binary (not in the pool's unit tests) because an
//! armed fault plan is process-global: arming `par.job` next to
//! unrelated pool tests in the lib test binary would fire into their
//! jobs too.

use mule_fault::FaultPlan;
use mule_par::TaskPool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn injected_dispatch_panic_is_caught_and_the_worker_survives() {
    // The first job dispatch fires an injected panic; later jobs run.
    mule_fault::arm(FaultPlan::parse(7, "par.job=panic#1").unwrap());

    let pool = TaskPool::new(1);
    let ran = Arc::new(AtomicUsize::new(0));
    for _ in 0..3 {
        let ran = Arc::clone(&ran);
        pool.spawn(move || {
            ran.fetch_add(1, Ordering::SeqCst);
        });
    }

    // With one worker and FIFO dispatch, the injected panic eats exactly
    // the first job; the surviving worker must still run the other two.
    let deadline = Instant::now() + Duration::from_secs(5);
    while ran.load(Ordering::SeqCst) < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(ran.load(Ordering::SeqCst), 2, "jobs after the fault ran");
    assert_eq!(pool.panic_count(), 1, "the injected panic was counted");

    let log = mule_fault::firing_log();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].point, "par.job");
    assert_eq!(log[0].kind, "panic");

    mule_fault::disarm();
    drop(pool);
}

#[test]
fn disarmed_pool_dispatch_is_unaffected() {
    // Runs after/before the armed test in the same binary; the guard is
    // that this test never observes a fault when it holds no plan. Rust
    // test threads may interleave, so use a distinct point-free check:
    // a pool with no armed plan must complete every job.
    let pool = TaskPool::new(2);
    let ran = Arc::new(AtomicUsize::new(0));
    for _ in 0..16 {
        let ran = Arc::clone(&ran);
        pool.spawn(move || {
            ran.fetch_add(1, Ordering::SeqCst);
        });
    }
    drop(pool);
    assert_eq!(ran.load(Ordering::SeqCst), 16);
    assert_eq!(mule_fault::firings_total(), 0);
}
