//! Quarantine semantics for `run_sweep`: a panicking replica must not
//! take down the grid. Lives in its own test binary because arming a
//! fault plan is process-global and would fire into the montecarlo unit
//! tests' sweeps if they shared a process.

use mule_fault::FaultPlan;
use mule_sim::{run_sweep, SimulationConfig};
use mule_workload::{seed_fan, ScenarioConfig, SweepSpec};
use patrol_core::{BTctp, Planner};
use std::sync::Mutex;

/// Serialises the tests in this binary: armed plans are process-global,
/// so a disarmed-control test running concurrently with an armed one
/// would otherwise race for the same fault budget.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn factory() -> Box<dyn Planner> {
    Box::new(BTctp::new())
}

fn small_spec() -> SweepSpec {
    SweepSpec::new(ScenarioConfig::paper_default().with_targets(6))
        .with_seeds(vec![1, 2])
        .with_replicas(2)
        .with_horizon(5_000.0)
}

#[test]
fn panicking_replica_is_quarantined_and_the_grid_completes() {
    let _guard = FAULT_LOCK.lock().unwrap();
    // Limit 1 + a forced single worker: the very first (cell, replica)
    // task — cell 0, replica 0 — panics, everything else runs clean.
    mule_fault::arm(FaultPlan::parse(11, "sweep.replica=panic#1").unwrap());
    let spec = small_spec();
    let groups = run_sweep(&factory, &spec, &SimulationConfig::timing_only(), Some(1));
    mule_fault::disarm();

    assert_eq!(groups.len(), 2);
    let g0 = &groups[0];
    assert_eq!(g0.quarantined.len(), 1, "exactly one replica quarantined");
    let q = &g0.quarantined[0];
    assert_eq!(q.cell_index, 0);
    assert_eq!(q.replica, 0);
    assert_eq!(q.seed, seed_fan(g0.cell.seed, spec.replicas)[0]);
    assert!(
        q.message.starts_with(mule_fault::INJECTED_PANIC_PREFIX),
        "payload captured: {}",
        q.message
    );
    // The owning cell keeps its surviving replica; the other cell is
    // untouched. No panic escaped to this thread, no planner error was
    // fabricated from the panic.
    assert_eq!(g0.outcomes.len(), 1);
    assert!(g0.failures.is_empty());
    assert_eq!(groups[1].outcomes.len(), 2);
    assert!(groups[1].quarantined.is_empty());
}

#[test]
fn quarantined_replicas_do_not_disturb_the_surviving_results() {
    let _guard = FAULT_LOCK.lock().unwrap();
    let spec = small_spec();
    let clean = run_sweep(&factory, &spec, &SimulationConfig::timing_only(), Some(1));

    mule_fault::arm(FaultPlan::parse(11, "sweep.replica=panic#1").unwrap());
    let faulted = run_sweep(&factory, &spec, &SimulationConfig::timing_only(), Some(1));
    mule_fault::disarm();

    // Replicas are independent pure functions of their seeds, so every
    // replica that survived the fault run is byte-for-byte the outcome
    // the clean run produced for the same (cell, replica) slot.
    assert_eq!(faulted[0].outcomes.as_slice(), &clean[0].outcomes[1..]);
    assert_eq!(faulted[1].outcomes, clean[1].outcomes);
}

#[test]
fn disarmed_sweeps_have_no_quarantine_and_no_firings() {
    let _guard = FAULT_LOCK.lock().unwrap();
    mule_fault::disarm();
    let groups = run_sweep(
        &factory,
        &small_spec(),
        &SimulationConfig::timing_only(),
        None,
    );
    assert!(groups.iter().all(|g| g.quarantined.is_empty()));
    assert_eq!(mule_fault::firings_total(), 0);
}
