//! Golden equivalence test: on static scenarios, the event-timeline engine
//! must produce **byte-identical** `SimulationOutcome`s to the original
//! fixed-plan engine (the private `Arrival`-heap implementation this crate
//! shipped with before the `mule-events` refactor).
//!
//! The original engine is preserved here, verbatim in behaviour, as a
//! reference implementation built purely on public APIs. Every comparison
//! is exact `PartialEq` — times, distances, energies and byte counts must
//! match to the last bit, which holds because the refactored engine
//! performs the identical floating-point operations in the identical
//! order.

use mule_energy::{Battery, ConsumptionLedger, EnergyCause};
use mule_net::{DataBuffer, MulePayload, NodeId, NodeKind};
use mule_sim::{
    MuleReport, MuleStatus, Simulation, SimulationConfig, SimulationOutcome, VisitRecord,
};
use mule_workload::{Scenario, ScenarioConfig, WeightSpec};
use patrol_core::baselines::{ChbPlanner, SweepPlanner};
use patrol_core::{BTctp, PatrolPlan, Planner, RwTctp};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

// --- The pre-refactor engine, kept as the reference oracle ---------------

#[derive(Debug, Clone, Copy, PartialEq)]
struct Arrival {
    time_s: f64,
    mule: usize,
}

impl Eq for Arrival {}

impl Ord for Arrival {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time_s
            .partial_cmp(&self.time_s)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.mule.cmp(&self.mule))
    }
}

impl PartialOrd for Arrival {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

struct RefRoute {
    positions: Vec<mule_geom::Point>,
    nodes: Vec<NodeId>,
    cumulative: Vec<f64>,
    total_length: f64,
}

impl RefRoute {
    fn from_itinerary(it: &patrol_core::MuleItinerary) -> Self {
        let positions: Vec<mule_geom::Point> = it.cycle.iter().map(|w| w.position).collect();
        let nodes: Vec<NodeId> = it.cycle.iter().map(|w| w.node).collect();
        let mut cumulative = Vec::with_capacity(positions.len() + 1);
        let mut acc = 0.0;
        cumulative.push(0.0);
        for i in 0..positions.len() {
            let next = (i + 1) % positions.len().max(1);
            acc += positions[i].distance(&positions[next]);
            cumulative.push(acc);
        }
        let total_length = if positions.len() >= 2 { acc } else { 0.0 };
        RefRoute {
            positions,
            nodes,
            cumulative,
            total_length,
        }
    }

    fn len(&self) -> usize {
        self.positions.len()
    }
}

struct RefMule {
    battery: Battery,
    ledger: ConsumptionLedger,
    payload: MulePayload,
    distance_m: f64,
    visits: usize,
    recharges: usize,
    status: MuleStatus,
    next_waypoint: usize,
    next_arrival_s: f64,
}

fn consume_movement(
    config: &SimulationConfig,
    scenario: &Scenario,
    state: &mut RefMule,
    distance_m: f64,
    route: &RefRoute,
    destination_wp: usize,
) -> bool {
    if distance_m <= 0.0 {
        return true;
    }
    if !config.energy_enabled {
        state.distance_m += distance_m;
        return true;
    }
    let energy = config.energy.movement_energy(distance_m);
    if !state.battery.can_afford(energy) {
        let affordable = config.energy.range_on(state.battery.remaining());
        state.distance_m += affordable.min(distance_m);
        state.battery.draw(energy);
        return false;
    }
    state.battery.draw(energy);
    state.distance_m += distance_m;
    let field = scenario.field();
    let dest_is_station = field
        .node(route.nodes[destination_wp])
        .map(|n| n.kind == NodeKind::RechargeStation)
        .unwrap_or(false);
    let cause = if dest_is_station {
        EnergyCause::RechargeMovement
    } else {
        EnergyCause::PatrolMovement
    };
    state.ledger.record(cause, energy);
    true
}

/// The original `Simulation::run_for`, operation for operation.
fn reference_run(
    scenario: &Scenario,
    plan: &PatrolPlan,
    config: &SimulationConfig,
    horizon_s: f64,
) -> SimulationOutcome {
    let horizon = horizon_s.max(0.0);
    let speed = config.energy.speed_m_per_s.max(1e-9);
    let field = scenario.field();

    let mut buffers: HashMap<NodeId, DataBuffer> = field
        .nodes()
        .iter()
        .filter(|n| n.kind == NodeKind::Target)
        .map(|n| (n.id, DataBuffer::new(scenario.data_rate_bps())))
        .collect();
    let mut last_visit: HashMap<NodeId, f64> = field.nodes().iter().map(|n| (n.id, 0.0)).collect();

    let routes: Vec<RefRoute> = plan
        .itineraries
        .iter()
        .map(RefRoute::from_itinerary)
        .collect();
    let mut states: Vec<RefMule> = plan
        .itineraries
        .iter()
        .map(|it| RefMule {
            battery: Battery::full(config.energy.initial_energy_j),
            ledger: ConsumptionLedger::new(),
            payload: MulePayload::new(),
            distance_m: 0.0,
            visits: 0,
            recharges: 0,
            status: if it.cycle.len() < 2 {
                MuleStatus::Idle
            } else {
                MuleStatus::Active
            },
            next_waypoint: 0,
            next_arrival_s: 0.0,
        })
        .collect();

    let mut queue: BinaryHeap<Arrival> = BinaryHeap::new();
    let mut visits: Vec<VisitRecord> = Vec::new();

    let deploy_dists: Vec<f64> = plan
        .itineraries
        .iter()
        .enumerate()
        .map(|(m, it)| {
            if routes[m].len() == 0 {
                0.0
            } else {
                it.start_position.distance(&it.entry_point())
            }
        })
        .collect();
    let fleet_ready_s = deploy_dists.iter().cloned().fold(0.0, f64::max) / speed;

    for (m, it) in plan.itineraries.iter().enumerate() {
        let route = &routes[m];
        if route.len() == 0 {
            continue;
        }
        let entry_offset = if route.total_length > 1e-9 {
            it.entry_offset_m.rem_euclid(route.total_length)
        } else {
            0.0
        };
        let deploy_dist = deploy_dists[m];

        let (first_wp, partial_dist) = if route.total_length <= 1e-9 {
            (0usize, 0.0)
        } else {
            let mut found = None;
            for i in 0..route.len() {
                if route.cumulative[i] >= entry_offset - 1e-9 {
                    found = Some((i, route.cumulative[i] - entry_offset));
                    break;
                }
            }
            found.unwrap_or((0, route.total_length - entry_offset))
        };

        let travel = deploy_dist + partial_dist.max(0.0);
        if !consume_movement(config, scenario, &mut states[m], travel, route, first_wp) {
            states[m].status = MuleStatus::Depleted { at_s: 0.0 };
            continue;
        }
        let patrol_start_s = if config.synchronized_start {
            fleet_ready_s
        } else {
            deploy_dist / speed
        };
        states[m].next_waypoint = first_wp;
        states[m].next_arrival_s = patrol_start_s + partial_dist.max(0.0) / speed;
        if states[m].next_arrival_s <= horizon {
            queue.push(Arrival {
                time_s: states[m].next_arrival_s,
                mule: m,
            });
        }
    }

    while let Some(Arrival { time_s: now, mule }) = queue.pop() {
        if now > horizon {
            continue;
        }
        let route = &routes[mule];
        let wp = states[mule].next_waypoint;
        let node_id = route.nodes[wp];
        let node_kind = field.node(node_id).map(|n| n.kind);

        match node_kind {
            Some(NodeKind::Target) => {
                let age = now - last_visit.get(&node_id).copied().unwrap_or(0.0);
                let bytes = buffers
                    .get_mut(&node_id)
                    .map(|b| b.collect(now).0)
                    .unwrap_or(0.0);
                states[mule].payload.load(node_id, bytes);
                if config.energy_enabled {
                    let e = config.energy.collection_energy(1);
                    states[mule].battery.draw(e);
                    states[mule].ledger.record(EnergyCause::Collection, e);
                }
                states[mule].visits += 1;
                last_visit.insert(node_id, now);
                visits.push(VisitRecord {
                    time_s: now,
                    mule_index: mule,
                    node: node_id,
                    data_age_s: age.max(0.0),
                    bytes,
                });
            }
            Some(NodeKind::Sink) => {
                let age = now - last_visit.get(&node_id).copied().unwrap_or(0.0);
                states[mule].payload.deliver_all();
                states[mule].visits += 1;
                last_visit.insert(node_id, now);
                visits.push(VisitRecord {
                    time_s: now,
                    mule_index: mule,
                    node: node_id,
                    data_age_s: age.max(0.0),
                    bytes: 0.0,
                });
            }
            Some(NodeKind::RechargeStation) => {
                if config.energy_enabled {
                    states[mule].battery.recharge_full();
                }
                states[mule].recharges += 1;
                last_visit.insert(node_id, now);
            }
            None => {}
        }

        if route.total_length <= 1e-9 && config.collection_dwell_s <= 0.0 {
            continue;
        }
        let next_wp = (wp + 1) % route.len();
        let leg = route.positions[wp].distance(&route.positions[next_wp]);
        if !consume_movement(config, scenario, &mut states[mule], leg, route, next_wp) {
            states[mule].status = MuleStatus::Depleted { at_s: now };
            continue;
        }
        let arrival = now + config.collection_dwell_s + leg / speed;
        states[mule].next_waypoint = next_wp;
        states[mule].next_arrival_s = arrival;
        if arrival <= horizon {
            queue.push(Arrival {
                time_s: arrival,
                mule,
            });
        }
    }

    visits.sort_by(|a, b| {
        a.time_s
            .partial_cmp(&b.time_s)
            .unwrap_or(Ordering::Equal)
            .then(a.mule_index.cmp(&b.mule_index))
    });

    SimulationOutcome {
        planner_name: plan.planner_name.clone(),
        horizon_s: horizon,
        visits,
        mules: plan
            .itineraries
            .iter()
            .zip(states.iter())
            .map(|(it, s)| MuleReport {
                mule_index: it.mule_index,
                status: s.status,
                distance_m: s.distance_m,
                visits: s.visits,
                recharges: s.recharges,
                remaining_energy_j: s.battery.remaining(),
                ledger: s.ledger.clone(),
                delivered_bytes: s.payload.delivered_bytes(),
            })
            .collect(),
    }
}

// --- The comparisons ------------------------------------------------------

fn assert_identical(
    scenario: &Scenario,
    plan: &PatrolPlan,
    config: SimulationConfig,
    horizon: f64,
) {
    let reference = reference_run(scenario, plan, &config, horizon);
    let actual = Simulation::with_config(scenario, plan, config).run_for(horizon);
    assert_eq!(
        actual, reference,
        "event-loop engine diverged from the reference engine ({} @ horizon {horizon})",
        plan.planner_name
    );
}

#[test]
fn btctp_outcomes_are_byte_identical_across_seeds() {
    for seed in [1, 7, 23, 101, 4242] {
        let s = ScenarioConfig::paper_default().with_seed(seed).generate();
        let plan = BTctp::new().plan(&s).unwrap();
        assert_identical(&s, &plan, SimulationConfig::timing_only(), 40_000.0);
        assert_identical(&s, &plan, SimulationConfig::default(), 25_000.0);
    }
}

#[test]
fn baseline_planners_are_byte_identical_too() {
    let s = ScenarioConfig::paper_default()
        .with_targets(14)
        .with_mules(3)
        .with_seed(99)
        .generate();
    for plan in [
        ChbPlanner::new().plan(&s).unwrap(),
        SweepPlanner::new().plan(&s).unwrap(),
        BTctp::new().plan(&s).unwrap(),
    ] {
        assert_identical(&s, &plan, SimulationConfig::timing_only(), 60_000.0);
    }
}

#[test]
fn recharge_and_energy_paths_are_byte_identical() {
    let s = ScenarioConfig::paper_default()
        .with_targets(10)
        .with_weights(WeightSpec::UniformVips {
            count: 2,
            weight: 2,
        })
        .with_recharge_station(true)
        .with_seed(19)
        .generate();
    let plan = RwTctp::default().plan(&s).unwrap();
    assert_identical(&s, &plan, SimulationConfig::default(), 100_000.0);
}

#[test]
fn degenerate_cases_are_byte_identical() {
    // More mules than targets → idle itineraries.
    let sparse = ScenarioConfig::paper_default()
        .with_targets(2)
        .with_mules(5)
        .with_seed(8)
        .generate();
    let plan = SweepPlanner::new().plan(&sparse).unwrap();
    assert_identical(&sparse, &plan, SimulationConfig::timing_only(), 10_000.0);
    // Zero horizon.
    let s = ScenarioConfig::paper_default().with_seed(29).generate();
    let plan = BTctp::new().plan(&s).unwrap();
    assert_identical(&s, &plan, SimulationConfig::timing_only(), 0.0);
    // Unsynchronized start and nonzero dwell.
    let config = SimulationConfig {
        synchronized_start: false,
        collection_dwell_s: 12.5,
        ..SimulationConfig::timing_only()
    };
    assert_identical(&s, &plan, config, 20_000.0);
}
