//! Property-based tests of the simulation engine.

use mule_sim::{Simulation, SimulationConfig};
use mule_workload::{ScenarioConfig, WeightSpec};
use patrol_core::baselines::ChbPlanner;
use patrol_core::{BTctp, BreakEdgePolicy, Planner, WTctp};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The steady-state visiting interval of B-TCTP equals |P| / (n·v) for
    /// every target, on any scenario.
    #[test]
    fn btctp_steady_state_interval_matches_theory(
        seed in 0u64..20_000,
        targets in 3usize..16,
        mules in 1usize..6,
    ) {
        let scenario = ScenarioConfig::paper_default()
            .with_targets(targets)
            .with_mules(mules)
            .with_seed(seed)
            .generate();
        let plan = BTctp::new().plan(&scenario).unwrap();
        let cycle = plan.itineraries[0].cycle_length();
        prop_assume!(cycle > 50.0);
        let expected = cycle / (mules as f64 * 2.0);
        // Long enough for at least six visits of every node after warm-up.
        let horizon = expected * 8.0 + 4_000.0;
        let outcome =
            Simulation::with_config(&scenario, &plan, SimulationConfig::timing_only())
                .run_for(horizon);
        for (_, times) in outcome.visit_times_per_node() {
            prop_assume!(times.len() >= 4);
            for w in times[2..].windows(2) {
                prop_assert!(((w[1] - w[0]) - expected).abs() < 1.0,
                    "interval {} vs expected {expected}", w[1] - w[0]);
            }
        }
    }

    /// Fleet distance is consistent with elapsed time: no mule can travel
    /// further than speed × horizon (plus its deployment leg).
    #[test]
    fn distance_is_bounded_by_speed_times_time(
        seed in 0u64..20_000,
        targets in 3usize..14,
        mules in 1usize..5,
        horizon in 2_000.0f64..40_000.0,
    ) {
        let scenario = ScenarioConfig::paper_default()
            .with_targets(targets)
            .with_mules(mules)
            .with_seed(seed)
            .generate();
        let plan = ChbPlanner::new().plan(&scenario).unwrap();
        let outcome =
            Simulation::with_config(&scenario, &plan, SimulationConfig::timing_only())
                .run_for(horizon);
        // The engine pre-charges each leg when it is scheduled, so a mule
        // may have "committed" up to one extra cycle beyond the horizon.
        let slack = plan.max_cycle_length() + 1_200.0;
        for m in &outcome.mules {
            prop_assert!(m.distance_m <= 2.0 * horizon + slack,
                "mule {} travelled {} m in {horizon} s", m.mule_index, m.distance_m);
        }
    }

    /// Doubling the fleet never increases the steady-state maximum visiting
    /// interval under B-TCTP.
    #[test]
    fn more_mules_never_hurt_btctp(
        seed in 0u64..20_000,
        targets in 4usize..14,
        mules in 1usize..4,
    ) {
        let horizon = 90_000.0;
        let interval_for = |n: usize| {
            let scenario = ScenarioConfig::paper_default()
                .with_targets(targets)
                .with_mules(n)
                .with_seed(seed)
                .generate();
            let plan = BTctp::new().plan(&scenario).unwrap();
            let outcome =
                Simulation::with_config(&scenario, &plan, SimulationConfig::timing_only())
                    .run_for(horizon);
            mule_metrics::IntervalReport::from_outcome(&outcome).max_interval()
        };
        let small_fleet = interval_for(mules);
        let big_fleet = interval_for(mules * 2);
        prop_assert!(big_fleet <= small_fleet + 1.0,
            "{mules} mules: {small_fleet}, {} mules: {big_fleet}", mules * 2);
    }

    /// Weighted plans deliver proportional service: over a long horizon a
    /// VIP of weight w receives at least (w−1)× the visits of the least
    /// visited NTP.
    #[test]
    fn vip_service_scales_with_weight(
        seed in 0u64..20_000,
        targets in 8usize..16,
        weight in 2u32..5,
    ) {
        let scenario = ScenarioConfig::paper_default()
            .with_targets(targets)
            .with_mules(2)
            .with_weights(WeightSpec::UniformVips { count: 2, weight })
            .with_seed(seed)
            .generate();
        let plan = WTctp::new(BreakEdgePolicy::BalancingLength).plan(&scenario).unwrap();
        let horizon = plan.itineraries[0].cycle_length() * 3.0;
        let outcome =
            Simulation::with_config(&scenario, &plan, SimulationConfig::timing_only())
                .run_for(horizon);
        let per_node = outcome.visit_times_per_node();
        let min_ntp = scenario
            .field()
            .patrolled_nodes()
            .iter()
            .filter(|n| !n.is_vip())
            .map(|n| per_node.get(&n.id).map(Vec::len).unwrap_or(0))
            .min()
            .unwrap_or(0);
        for vip in scenario.field().vips() {
            let vip_visits = per_node.get(&vip.id).map(Vec::len).unwrap_or(0);
            prop_assert!(
                vip_visits + 1 >= min_ntp * (weight as usize - 1),
                "VIP {} got {vip_visits} visits, min NTP {min_ntp}, weight {weight}",
                vip.id
            );
        }
    }
}
