//! The parallel-vs-sequential equivalence contract of `run_sweep`
//! (documented in `docs/DETERMINISM.md`): a sweep executed on N workers is
//! bit-identical to the same sweep forced onto a single worker, raw
//! outcomes and aggregated statistics alike.

use mule_metrics::SweepReport;
use mule_sim::{run_sweep, SimulationConfig};
use mule_workload::{DisruptionConfig, ScenarioConfig, SweepSpec};
use patrol_core::{BTctp, Planner};

fn factory() -> Box<dyn Planner> {
    Box::new(BTctp::new())
}

/// 2 seeds × 2 fleet sizes × 1 speed × 2 disruption settings = 8 cells,
/// covering both the static and the dynamic engine paths.
fn eight_cell_spec() -> SweepSpec {
    SweepSpec::new(ScenarioConfig::paper_default().with_targets(6))
        .with_seeds(vec![1, 2])
        .with_mule_counts(vec![2, 3])
        .with_speeds(vec![2.0])
        .with_disruptions(vec![
            None,
            Some(DisruptionConfig::default_mixed(1, 6_000.0)),
        ])
        .with_replicas(2)
        .with_horizon(6_000.0)
}

#[test]
fn parallel_sweep_equals_single_worker_sweep() {
    let spec = eight_cell_spec();
    assert_eq!(spec.cell_count(), 8);
    let config = SimulationConfig::timing_only();

    let sequential = run_sweep(&factory, &spec, &config, Some(1));
    let parallel = run_sweep(&factory, &spec, &config, Some(4));

    // Raw per-replica outcomes are bit-identical…
    assert_eq!(sequential, parallel);

    // …and so are the aggregated statistics (mean / stddev / CI) and the
    // rendered artefacts derived from them.
    let seq_report = SweepReport::from_cells(&sequential);
    let par_report = SweepReport::from_cells(&parallel);
    assert_eq!(seq_report, par_report);
    assert_eq!(seq_report.to_csv(), par_report.to_csv());
    assert_eq!(
        seq_report.to_table().render(),
        par_report.to_table().render()
    );
}

#[test]
fn sweep_is_deterministic_across_repeated_parallel_runs() {
    let spec = eight_cell_spec();
    let config = SimulationConfig::timing_only();
    let a = run_sweep(&factory, &spec, &config, None);
    let b = run_sweep(&factory, &spec, &config, None);
    assert_eq!(a, b);
}

#[test]
fn worker_count_does_not_leak_into_any_reported_number() {
    let spec = eight_cell_spec();
    let config = SimulationConfig::timing_only();
    let reference = SweepReport::from_cells(&run_sweep(&factory, &spec, &config, Some(1)));
    for workers in [2, 3, 8] {
        let report = SweepReport::from_cells(&run_sweep(&factory, &spec, &config, Some(workers)));
        assert_eq!(reference, report, "workers = {workers}");
    }
}
