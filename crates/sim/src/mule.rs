//! Per-mule simulation state and end-of-run report.

use mule_energy::{Battery, ConsumptionLedger};
use mule_net::MulePayload;
use serde::{Deserialize, Serialize};

/// Whether a mule was still operating at the end of the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MuleStatus {
    /// Still patrolling when the horizon was reached.
    Active,
    /// Ran out of energy at the recorded simulation time.
    Depleted {
        /// Time at which the battery emptied, seconds.
        at_s: f64,
    },
    /// Had an empty itinerary and never moved.
    Idle,
    /// Permanently failed at the recorded time (a dynamic-scenario mule
    /// breakdown, not an energy death).
    BrokenDown {
        /// Time of the breakdown, seconds.
        at_s: f64,
    },
}

impl MuleStatus {
    /// Returns `true` when the mule survived the whole run (neither its
    /// battery emptied nor it broke down).
    pub fn survived(&self) -> bool {
        !matches!(
            self,
            MuleStatus::Depleted { .. } | MuleStatus::BrokenDown { .. }
        )
    }
}

/// Summary of one mule's run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MuleReport {
    /// Index of the mule in the scenario.
    pub mule_index: usize,
    /// Final status.
    pub status: MuleStatus,
    /// Total distance travelled, metres.
    pub distance_m: f64,
    /// Number of target/sink visits performed.
    pub visits: usize,
    /// Number of recharges at the station.
    pub recharges: usize,
    /// Remaining battery energy at the end of the run, joules.
    pub remaining_energy_j: f64,
    /// Energy consumption broken down by cause.
    pub ledger: ConsumptionLedger,
    /// Total bytes delivered to the sink.
    pub delivered_bytes: f64,
}

/// Internal mutable state of one mule while the simulation runs.
#[derive(Debug, Clone)]
pub(crate) struct MuleState {
    pub index: usize,
    pub battery: Battery,
    pub ledger: ConsumptionLedger,
    pub payload: MulePayload,
    pub distance_m: f64,
    pub visits: usize,
    pub recharges: usize,
    pub status: MuleStatus,
    /// Position within the itinerary cycle of the *next* waypoint to reach.
    pub next_waypoint: usize,
    /// Simulation time of the next waypoint arrival (if scheduled).
    pub next_arrival_s: f64,
    /// The last position the mule is known to have reached (its start
    /// position until the first arrival). Replanning reads this for
    /// unscheduled mules.
    pub position: mule_geom::Point,
    /// Whether a waypoint-arrival event for this mule is currently on the
    /// timeline.
    pub scheduled: bool,
}

impl MuleState {
    pub(crate) fn report(&self) -> MuleReport {
        MuleReport {
            mule_index: self.index,
            status: self.status,
            distance_m: self.distance_m,
            visits: self.visits,
            recharges: self.recharges,
            remaining_energy_j: self.battery.remaining(),
            ledger: self.ledger.clone(),
            delivered_bytes: self.payload.delivered_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_survival_classification() {
        assert!(MuleStatus::Active.survived());
        assert!(MuleStatus::Idle.survived());
        assert!(!MuleStatus::Depleted { at_s: 10.0 }.survived());
        assert!(!MuleStatus::BrokenDown { at_s: 10.0 }.survived());
    }

    #[test]
    fn state_report_round_trips_the_counters() {
        let state = MuleState {
            index: 2,
            battery: Battery::full(100.0),
            ledger: ConsumptionLedger::new(),
            payload: MulePayload::new(),
            distance_m: 42.0,
            visits: 7,
            recharges: 1,
            status: MuleStatus::Active,
            next_waypoint: 0,
            next_arrival_s: 0.0,
            position: mule_geom::Point::new(0.0, 0.0),
            scheduled: false,
        };
        let report = state.report();
        assert_eq!(report.mule_index, 2);
        assert_eq!(report.distance_m, 42.0);
        assert_eq!(report.visits, 7);
        assert_eq!(report.recharges, 1);
        assert_eq!(report.remaining_energy_j, 100.0);
        assert!(report.status.survived());
    }
}
