//! Replicated simulation sweeps and declarative experiment grids.
//!
//! The paper averages every reported number over 20 random topologies
//! (§5.1). [`run_replicated`] runs one planner over a whole
//! [`mule_workload::ReplicationPlan`] in parallel (the `rayon` shim on the
//! `mule-par` worker pool) and returns the per-replica outcomes plus
//! ready-made averaging helpers.
//!
//! [`run_sweep`] scales this up to a full [`mule_workload::SweepSpec`]
//! grid: every `(cell, replica)` pair of the grid is an independent
//! simulation, so the whole sweep is flattened into one task list and
//! executed with chunked work-stealing. Results are regrouped by cell in
//! grid order, so the output — and every statistic derived from it — is
//! identical for any worker count, including a forced single-worker run.

use crate::config::SimulationConfig;
use crate::dynamics::DynamicSimulation;
use crate::engine::Simulation;
use crate::outcome::SimulationOutcome;
use mule_workload::{seed_fan, DisruptionPlan, ReplicationPlan, SweepCell, SweepSpec};
use patrol_core::{PatrolPlan, PlanError, Planner, ReplanWithPlanner};
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The outcomes of all replicas of one (planner, configuration) cell.
#[derive(Debug, Clone)]
pub struct ReplicatedOutcome {
    /// One simulation outcome per successfully planned replica.
    pub outcomes: Vec<SimulationOutcome>,
    /// Replicas whose planner returned an error (kept for diagnosis; the
    /// figure harness treats a non-empty list as a configuration bug).
    pub failures: Vec<PlanError>,
}

/// Mean of `metric` over `outcomes`, `None` when there are none. Shared by
/// every per-replica averaging helper so the semantics cannot diverge.
fn average_metric<F: Fn(&SimulationOutcome) -> f64>(
    outcomes: &[SimulationOutcome],
    metric: F,
) -> Option<f64> {
    if outcomes.is_empty() {
        return None;
    }
    Some(outcomes.iter().map(&metric).sum::<f64>() / outcomes.len() as f64)
}

impl ReplicatedOutcome {
    /// Number of successful replicas.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Returns `true` when no replica succeeded.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Averages a scalar metric over the replicas. Returns `None` when
    /// there are no successful replicas.
    pub fn average<F: Fn(&SimulationOutcome) -> f64>(&self, metric: F) -> Option<f64> {
        average_metric(&self.outcomes, metric)
    }
}

/// Runs `planner` on every replica of `plan`, simulating each for
/// `horizon_s` seconds under `config`. Replicas run in parallel with rayon;
/// results are returned in replica order so the sweep stays deterministic.
pub fn run_replicated<P: patrol_core::Planner + Sync + ?Sized>(
    planner: &P,
    plan: &ReplicationPlan,
    config: &SimulationConfig,
    horizon_s: f64,
) -> ReplicatedOutcome {
    let results: Vec<Result<SimulationOutcome, PlanError>> = plan
        .configurations()
        .par_iter()
        .map(|cfg| {
            let scenario = cfg.generate();
            let patrol_plan: PatrolPlan = planner.plan(&scenario)?;
            Ok(Simulation::with_config(&scenario, &patrol_plan, *config).run_for(horizon_s))
        })
        .collect();

    let mut outcomes = Vec::new();
    let mut failures = Vec::new();
    for r in results {
        match r {
            Ok(o) => outcomes.push(o),
            Err(e) => failures.push(e),
        }
    }
    ReplicatedOutcome { outcomes, failures }
}

/// A replica that **panicked** mid-simulation (as opposed to returning a
/// [`PlanError`]) and was quarantined: the panic was caught on the worker,
/// the rest of the grid completed, and enough context is kept here to
/// reproduce the crash as a single sequential run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCellError {
    /// Grid index of the owning cell ([`SweepCell::index`]).
    pub cell_index: usize,
    /// The exact replica seed (from the cell's [`seed_fan`]), sufficient
    /// to re-run just this replica deterministically.
    pub seed: u64,
    /// Replica index within the cell, `0..spec.replicas`.
    pub replica: usize,
    /// The panic payload, when it was a string (the common case).
    pub message: String,
}

/// The outcomes of one cell of a [`SweepSpec`] grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCellOutcome {
    /// The grid cell these replicas belong to.
    pub cell: SweepCell,
    /// One outcome per successfully planned replica, in replica order.
    pub outcomes: Vec<SimulationOutcome>,
    /// Replicas whose (initial) planning failed.
    pub failures: Vec<PlanError>,
    /// Replicas that panicked and were quarantined (caught on the worker;
    /// the rest of the grid still completes).
    pub quarantined: Vec<SweepCellError>,
    /// Total replans performed across the cell's replicas (always zero for
    /// static cells).
    pub replans: usize,
}

impl SweepCellOutcome {
    /// Averages a scalar metric over the cell's successful replicas
    /// (`None` when every replica failed).
    pub fn average<F: Fn(&SimulationOutcome) -> f64>(&self, metric: F) -> Option<f64> {
        average_metric(&self.outcomes, metric)
    }
}

/// One `(cell, replica)` simulation: the unit of parallel work in a sweep.
fn run_sweep_replica(
    planner: &dyn Planner,
    spec: &SweepSpec,
    cell: &SweepCell,
    replica_seed: u64,
    base_config: &SimulationConfig,
) -> Result<(SimulationOutcome, usize), PlanError> {
    // Chaos hook: `sweep.replica=panic` simulates a replica crashing
    // mid-sweep; the caller quarantines it instead of losing the grid.
    let _ = mule_fault::point("sweep.replica");
    let mut config = base_config.with_horizon(spec.horizon_s);
    config.energy.speed_m_per_s = cell.speed_m_per_s;
    let scenario_cfg = spec.scenario_config(cell).with_seed(replica_seed);
    let scenario = scenario_cfg.generate();

    match &cell.disruption {
        None => {
            let plan: PatrolPlan = planner.plan(&scenario)?;
            let outcome = Simulation::with_config(&scenario, &plan, config).run_for(spec.horizon_s);
            Ok((outcome, 0))
        }
        Some(template) => {
            // Each replica gets its own disruption seed so the fan stays
            // decorrelated, exactly like the scenario seeds.
            let disruption_cfg = template.reseeded(replica_seed, spec.horizon_s);
            let disruptions = DisruptionPlan::seeded(&scenario, &disruption_cfg);
            // Plan on the world as it looks at t = 0 (late targets are not
            // yet known), mirroring `patrolctl dynamics`.
            let initial_world = scenario.restricted(
                &disruptions.late_target_ids(),
                scenario.mule_starts().to_vec(),
            );
            let plan = planner.plan(&initial_world)?;
            let replanner = ReplanWithPlanner::new(planner);
            let result = DynamicSimulation::new(&scenario, &plan, &disruptions)
                .with_config(config)
                .with_replanner(&replanner)
                .run_for(spec.horizon_s);
            let replans = result.replan_count();
            Ok((result.outcome, replans))
        }
    }
}

/// Runs a whole [`SweepSpec`] grid on the `mule-par` worker pool and
/// returns one [`SweepCellOutcome`] per cell, in [`SweepSpec::cells`]
/// order.
///
/// `planner_factory` builds a fresh planner per replica so boxed planners
/// need not be `Sync`; planners are deterministic functions of the
/// scenario, so this does not affect results. `workers` overrides the pool
/// size ([`mule_par::resolve_workers`] semantics; `Some(1)` forces the
/// exact sequential execution). Dynamic cells (a `Some` disruption axis
/// value) run the dynamic engine with online replanning; static cells run
/// the plain engine.
///
/// The returned outcomes are **bit-identical for every worker count**:
/// each `(cell, replica)` simulation is an independent pure function of
/// its seeds, and results are reassembled in grid order.
pub fn run_sweep<F>(
    planner_factory: &F,
    spec: &SweepSpec,
    base_config: &SimulationConfig,
    workers: Option<usize>,
) -> Vec<SweepCellOutcome>
where
    F: Fn() -> Box<dyn Planner> + Sync,
{
    let cells = spec.cells();
    let replicas = spec.replicas;
    let total = cells.len() * replicas;
    // One seed fan per cell, computed up front instead of once per task.
    let fans: Vec<Vec<u64>> = cells.iter().map(|c| seed_fan(c.seed, replicas)).collect();

    // When the *calling* thread is recording a trace, each replica runs
    // under its own capture on whatever worker executes it; the child
    // traces are grafted back in grid order below, so the combined span
    // tree is identical for any worker count.
    let tracing = mule_obs::trace_active();
    type ReplicaResult = Result<(SimulationOutcome, usize), PlanError>;
    // Outer `Err` = the replica panicked; it is caught *on the worker*
    // (inside the trace capture, so a partial trace still grafts back)
    // and quarantined during regrouping instead of poisoning the pool.
    type GuardedResult = Result<ReplicaResult, String>;
    let results: Vec<(GuardedResult, Option<mule_obs::Trace>)> =
        mule_par::parallel_map_indexed_with(mule_par::resolve_workers(workers), total, |i| {
            let cell = &cells[i / replicas];
            let replica_seed = fans[i / replicas][i % replicas];
            let planner = planner_factory();
            let task = || {
                catch_unwind(AssertUnwindSafe(|| {
                    run_sweep_replica(planner.as_ref(), spec, cell, replica_seed, base_config)
                }))
                .map_err(|payload| panic_message(payload.as_ref()))
            };
            if tracing {
                let (result, trace) = mule_obs::capture(task);
                (result, Some(trace))
            } else {
                (task(), None)
            }
        });

    let mut grouped: Vec<SweepCellOutcome> = cells
        .into_iter()
        .map(|cell| SweepCellOutcome {
            cell,
            outcomes: Vec::new(),
            failures: Vec::new(),
            quarantined: Vec::new(),
            replans: 0,
        })
        .collect();
    let mut results = results.into_iter();
    for (c, group) in grouped.iter_mut().enumerate() {
        let _cell_span = mule_obs::span("sweep.cell");
        mule_obs::add("cell", c as u64);
        for (r, (result, trace)) in results.by_ref().take(replicas).enumerate() {
            if let Some(t) = trace {
                mule_obs::graft(t);
            }
            match result {
                Ok(Ok((outcome, replans))) => {
                    group.outcomes.push(outcome);
                    group.replans += replans;
                }
                Ok(Err(e)) => group.failures.push(e),
                Err(message) => group.quarantined.push(SweepCellError {
                    cell_index: c,
                    seed: fans[c][r],
                    replica: r,
                    message,
                }),
            }
        }
    }
    grouped
}

/// Best-effort extraction of a panic payload's message (panics almost
/// always carry `&str` or `String`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "replica panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_workload::ScenarioConfig;
    use patrol_core::BTctp;

    #[test]
    fn replicated_run_produces_one_outcome_per_replica() {
        let plan = ReplicationPlan {
            base: ScenarioConfig::paper_default().with_targets(8),
            replicas: 6,
        };
        let rep = run_replicated(
            &BTctp::new(),
            &plan,
            &SimulationConfig::timing_only(),
            10_000.0,
        );
        assert_eq!(rep.len(), 6);
        assert!(rep.failures.is_empty());
        assert!(!rep.is_empty());
        let avg_visits = rep.average(|o| o.total_visits() as f64).unwrap();
        assert!(avg_visits > 0.0);
    }

    #[test]
    fn failures_are_collected_not_panicked() {
        let plan = ReplicationPlan {
            base: ScenarioConfig::paper_default().with_mules(0),
            replicas: 3,
        };
        let rep = run_replicated(
            &BTctp::new(),
            &plan,
            &SimulationConfig::timing_only(),
            1_000.0,
        );
        assert!(rep.is_empty());
        assert_eq!(rep.failures.len(), 3);
        assert!(rep.average(|o| o.total_visits() as f64).is_none());
    }

    fn factory() -> Box<dyn Planner> {
        Box::new(BTctp::new())
    }

    fn small_spec() -> SweepSpec {
        SweepSpec::new(ScenarioConfig::paper_default().with_targets(6))
            .with_replicas(2)
            .with_horizon(5_000.0)
    }

    #[test]
    fn paper_speed_constant_matches_the_energy_model() {
        assert_eq!(
            mule_workload::PAPER_SPEED_M_PER_S,
            mule_energy::EnergyModel::paper_default().speed_m_per_s
        );
    }

    #[test]
    fn sweep_produces_one_group_per_cell_in_grid_order() {
        let spec = small_spec()
            .with_seeds(vec![1, 2])
            .with_mule_counts(vec![2, 3]);
        let groups = run_sweep(&factory, &spec, &SimulationConfig::timing_only(), None);
        assert_eq!(groups.len(), 4);
        for (i, g) in groups.iter().enumerate() {
            assert_eq!(g.cell.index, i);
            assert_eq!(g.outcomes.len(), 2, "cell {i}");
            assert!(g.failures.is_empty());
            assert_eq!(g.replans, 0, "static cells never replan");
            assert!(g.average(|o| o.total_visits() as f64).unwrap() > 0.0);
        }
    }

    #[test]
    fn sweep_speed_axis_changes_the_outcome() {
        let slow = small_spec().with_speeds(vec![1.0]);
        let fast = small_spec().with_speeds(vec![4.0]);
        let config = SimulationConfig::timing_only();
        let a = run_sweep(&factory, &slow, &config, None);
        let b = run_sweep(&factory, &fast, &config, None);
        let visits = |g: &[SweepCellOutcome]| g[0].average(|o| o.total_visits() as f64).unwrap();
        assert!(
            visits(&b) > visits(&a),
            "faster mules should visit more: {} vs {}",
            visits(&b),
            visits(&a)
        );
    }

    #[test]
    fn sweep_dynamic_cells_run_disruptions_and_replan() {
        let spec = small_spec().with_disruptions(vec![
            None,
            Some(mule_workload::DisruptionConfig::default_mixed(1, 5_000.0)),
        ]);
        let groups = run_sweep(&factory, &spec, &SimulationConfig::timing_only(), None);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].replans, 0);
        assert!(
            groups[1].replans > 0,
            "mixed disruptions should trigger replans"
        );
        assert!(groups[1].failures.is_empty());
    }

    #[test]
    fn sweep_planning_failures_are_collected_per_cell() {
        let spec = small_spec().with_mule_counts(vec![0, 2]);
        let groups = run_sweep(&factory, &spec, &SimulationConfig::timing_only(), None);
        assert_eq!(groups[0].failures.len(), 2);
        assert!(groups[0].outcomes.is_empty());
        assert!(groups[0].average(|o| o.total_visits() as f64).is_none());
        assert!(groups[1].failures.is_empty());
        assert_eq!(groups[1].outcomes.len(), 2);
    }

    #[test]
    fn empty_axes_and_zero_replicas_yield_empty_results() {
        let no_cells = small_spec().with_seeds(vec![]);
        assert!(run_sweep(&factory, &no_cells, &SimulationConfig::timing_only(), None).is_empty());
        let no_replicas = small_spec().with_replicas(0);
        let groups = run_sweep(
            &factory,
            &no_replicas,
            &SimulationConfig::timing_only(),
            None,
        );
        assert_eq!(groups.len(), 1);
        assert!(groups[0].outcomes.is_empty() && groups[0].failures.is_empty());
    }

    #[test]
    fn replicated_runs_are_deterministic() {
        let plan = ReplicationPlan {
            base: ScenarioConfig::paper_default().with_targets(6),
            replicas: 4,
        };
        let a = run_replicated(
            &BTctp::new(),
            &plan,
            &SimulationConfig::timing_only(),
            5_000.0,
        );
        let b = run_replicated(
            &BTctp::new(),
            &plan,
            &SimulationConfig::timing_only(),
            5_000.0,
        );
        assert_eq!(a.outcomes, b.outcomes);
    }
}
