//! Replicated simulation sweeps.
//!
//! The paper averages every reported number over 20 random topologies
//! (§5.1). [`run_replicated`] runs one planner over a whole
//! [`mule_workload::ReplicationPlan`] in parallel (rayon) and returns the
//! per-replica outcomes plus ready-made averaging helpers.

use crate::config::SimulationConfig;
use crate::engine::Simulation;
use crate::outcome::SimulationOutcome;
use mule_workload::ReplicationPlan;
use patrol_core::{PatrolPlan, PlanError};
use rayon::prelude::*;

/// The outcomes of all replicas of one (planner, configuration) cell.
#[derive(Debug, Clone)]
pub struct ReplicatedOutcome {
    /// One simulation outcome per successfully planned replica.
    pub outcomes: Vec<SimulationOutcome>,
    /// Replicas whose planner returned an error (kept for diagnosis; the
    /// figure harness treats a non-empty list as a configuration bug).
    pub failures: Vec<PlanError>,
}

impl ReplicatedOutcome {
    /// Number of successful replicas.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Returns `true` when no replica succeeded.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Averages a scalar metric over the replicas. Returns `None` when
    /// there are no successful replicas.
    pub fn average<F: Fn(&SimulationOutcome) -> f64>(&self, metric: F) -> Option<f64> {
        if self.outcomes.is_empty() {
            return None;
        }
        Some(self.outcomes.iter().map(&metric).sum::<f64>() / self.outcomes.len() as f64)
    }
}

/// Runs `planner` on every replica of `plan`, simulating each for
/// `horizon_s` seconds under `config`. Replicas run in parallel with rayon;
/// results are returned in replica order so the sweep stays deterministic.
pub fn run_replicated<P: patrol_core::Planner + Sync + ?Sized>(
    planner: &P,
    plan: &ReplicationPlan,
    config: &SimulationConfig,
    horizon_s: f64,
) -> ReplicatedOutcome {
    let results: Vec<Result<SimulationOutcome, PlanError>> = plan
        .configurations()
        .par_iter()
        .map(|cfg| {
            let scenario = cfg.generate();
            let patrol_plan: PatrolPlan = planner.plan(&scenario)?;
            Ok(Simulation::with_config(&scenario, &patrol_plan, *config).run_for(horizon_s))
        })
        .collect();

    let mut outcomes = Vec::new();
    let mut failures = Vec::new();
    for r in results {
        match r {
            Ok(o) => outcomes.push(o),
            Err(e) => failures.push(e),
        }
    }
    ReplicatedOutcome { outcomes, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_workload::ScenarioConfig;
    use patrol_core::BTctp;

    #[test]
    fn replicated_run_produces_one_outcome_per_replica() {
        let plan = ReplicationPlan {
            base: ScenarioConfig::paper_default().with_targets(8),
            replicas: 6,
        };
        let rep = run_replicated(
            &BTctp::new(),
            &plan,
            &SimulationConfig::timing_only(),
            10_000.0,
        );
        assert_eq!(rep.len(), 6);
        assert!(rep.failures.is_empty());
        assert!(!rep.is_empty());
        let avg_visits = rep.average(|o| o.total_visits() as f64).unwrap();
        assert!(avg_visits > 0.0);
    }

    #[test]
    fn failures_are_collected_not_panicked() {
        let plan = ReplicationPlan {
            base: ScenarioConfig::paper_default().with_mules(0),
            replicas: 3,
        };
        let rep = run_replicated(
            &BTctp::new(),
            &plan,
            &SimulationConfig::timing_only(),
            1_000.0,
        );
        assert!(rep.is_empty());
        assert_eq!(rep.failures.len(), 3);
        assert!(rep.average(|o| o.total_visits() as f64).is_none());
    }

    #[test]
    fn replicated_runs_are_deterministic() {
        let plan = ReplicationPlan {
            base: ScenarioConfig::paper_default().with_targets(6),
            replicas: 4,
        };
        let a = run_replicated(
            &BTctp::new(),
            &plan,
            &SimulationConfig::timing_only(),
            5_000.0,
        );
        let b = run_replicated(
            &BTctp::new(),
            &plan,
            &SimulationConfig::timing_only(),
            5_000.0,
        );
        assert_eq!(a.outcomes, b.outcomes);
    }
}
