//! Simulation configuration.

use mule_energy::EnergyModel;
use serde::{Deserialize, Serialize};

/// Knobs of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Energy model (speed, movement/collection costs, battery capacity).
    pub energy: EnergyModel,
    /// Time a mule dwells at a target while collecting its data, seconds.
    /// The paper charges collection as an energy cost only, so the default
    /// is zero dwell.
    pub collection_dwell_s: f64,
    /// Simulation horizon in seconds. `run_for` overrides this; it is the
    /// default used by [`crate::Simulation::run`].
    pub horizon_s: f64,
    /// Whether mules consume energy at all. Disabling energy turns the
    /// simulator into a pure timing model (useful for the unweighted
    /// figures, which do not involve batteries).
    pub energy_enabled: bool,
    /// When `true` (the default, matching the paper's two-phase strategy),
    /// all mules hold at their start points until the slowest mule has
    /// finished its location-initialisation move, then begin patrolling
    /// simultaneously. This is what keeps consecutive TCTP mules exactly
    /// `|P|/n` apart and the visiting intervals constant.
    pub synchronized_start: bool,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            energy: EnergyModel::paper_default(),
            collection_dwell_s: 0.0,
            // Long enough for ~40 visits of every target in the paper's
            // default field with 4 mules.
            horizon_s: 80_000.0,
            energy_enabled: true,
            synchronized_start: true,
        }
    }
}

impl SimulationConfig {
    /// A pure timing configuration (energy accounting disabled) — used by
    /// the DCDT / SD figures that do not involve recharge.
    pub fn timing_only() -> Self {
        SimulationConfig {
            energy_enabled: false,
            ..SimulationConfig::default()
        }
    }

    /// Builder-style override of the horizon.
    pub fn with_horizon(mut self, horizon_s: f64) -> Self {
        self.horizon_s = horizon_s.max(0.0);
        self
    }

    /// Builder-style override of the energy model.
    pub fn with_energy(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Builder-style override of the collection dwell time.
    pub fn with_collection_dwell(mut self, dwell_s: f64) -> Self {
        self.collection_dwell_s = dwell_s.max(0.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_paper_energy_model_and_positive_horizon() {
        let c = SimulationConfig::default();
        assert_eq!(c.energy, EnergyModel::paper_default());
        assert!(c.horizon_s > 0.0);
        assert_eq!(c.collection_dwell_s, 0.0);
        assert!(c.energy_enabled);
    }

    #[test]
    fn timing_only_disables_energy() {
        let c = SimulationConfig::timing_only();
        assert!(!c.energy_enabled);
    }

    #[test]
    fn builders_clamp_negative_values() {
        let c = SimulationConfig::default()
            .with_horizon(-5.0)
            .with_collection_dwell(-1.0);
        assert_eq!(c.horizon_s, 0.0);
        assert_eq!(c.collection_dwell_s, 0.0);
        let e = EnergyModel {
            speed_m_per_s: 5.0,
            ..EnergyModel::paper_default()
        };
        assert_eq!(
            SimulationConfig::default()
                .with_energy(e)
                .energy
                .speed_m_per_s,
            5.0
        );
    }
}
