//! Dynamic scenario execution: disruptions plus online replanning.
//!
//! [`DynamicSimulation`] runs a [`PatrolPlan`] like [`crate::Simulation`]
//! does, but first compiles a [`DisruptionPlan`] onto the event timeline
//! and (optionally) reacts to every world-changing disruption by invoking
//! a [`Replanner`]. The result, a [`DynamicOutcome`], carries the ordinary
//! [`SimulationOutcome`] plus the applied-event timeline and the phase
//! boundaries the per-phase delay metrics report over.
//!
//! Everything is deterministic: the same scenario, plan, disruption plan
//! and replanner produce bit-identical outcomes on every run.

use crate::config::SimulationConfig;
use crate::engine::EngineCore;
use crate::outcome::SimulationOutcome;
use mule_workload::{DisruptionPlan, Scenario};
use patrol_core::{PatrolPlan, Replanner};
use serde::{Deserialize, Serialize};

/// One applied event of a dynamic run (a disruption taking effect, a
/// replan, a failure to replan).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineEntry {
    /// Simulation time, seconds.
    pub time_s: f64,
    /// Human-readable description.
    pub description: String,
}

/// The complete result of one dynamic run.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicOutcome {
    /// The ordinary simulation outcome (visits, mule reports).
    pub outcome: SimulationOutcome,
    /// Applied disruptions and replans, in time order.
    pub timeline: Vec<TimelineEntry>,
    /// Times at which a replan was adopted.
    pub replan_times_s: Vec<f64>,
    /// Phase boundaries for per-phase metrics: every disruption effect
    /// time (and speed-window end) inside the horizon.
    pub phase_boundaries_s: Vec<f64>,
    /// Total events fired on the timeline (arrivals + disruptions +
    /// replans) — a cheap sanity metric for tests and reports.
    pub events_fired: u64,
}

impl DynamicOutcome {
    /// Number of replans performed.
    pub fn replan_count(&self) -> usize {
        self.replan_times_s.len()
    }
}

/// A simulation with mid-run disruptions and optional online replanning.
pub struct DynamicSimulation<'a> {
    scenario: &'a Scenario,
    plan: &'a PatrolPlan,
    config: SimulationConfig,
    disruptions: &'a DisruptionPlan,
    replanner: Option<&'a dyn Replanner>,
}

impl<'a> DynamicSimulation<'a> {
    /// Creates a dynamic simulation with the default configuration and no
    /// replanner (disruptions apply, but the fleet keeps flying the
    /// original plan).
    pub fn new(
        scenario: &'a Scenario,
        plan: &'a PatrolPlan,
        disruptions: &'a DisruptionPlan,
    ) -> Self {
        DynamicSimulation {
            scenario,
            plan,
            config: SimulationConfig::default(),
            disruptions,
            replanner: None,
        }
    }

    /// Overrides the simulation configuration.
    pub fn with_config(mut self, config: SimulationConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a replanner invoked after every world-changing disruption.
    pub fn with_replanner(mut self, replanner: &'a dyn Replanner) -> Self {
        self.replanner = Some(replanner);
        self
    }

    /// Runs until the configured horizon.
    pub fn run(&self) -> DynamicOutcome {
        self.run_for(self.config.horizon_s)
    }

    /// Runs until `horizon_s` seconds of simulated time.
    pub fn run_for(&self, horizon_s: f64) -> DynamicOutcome {
        let run = EngineCore::new(
            self.scenario,
            self.plan,
            self.config,
            self.disruptions,
            self.replanner,
            horizon_s,
        )
        .run();
        let horizon = horizon_s.max(0.0);
        let phase_boundaries_s: Vec<f64> = self
            .disruptions
            .phase_boundaries_s()
            .into_iter()
            .filter(|t| (0.0..=horizon).contains(t))
            .collect();
        DynamicOutcome {
            outcome: run.outcome,
            timeline: run.timeline,
            replan_times_s: run.replan_times_s,
            phase_boundaries_s,
            events_fired: run.events_fired,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_net::NodeId;
    use mule_workload::{Disruption, DisruptionConfig, ScenarioConfig};
    use patrol_core::{BTctp, Planner, ReplanWithPlanner};

    fn scenario(seed: u64) -> Scenario {
        ScenarioConfig::paper_default().with_seed(seed).generate()
    }

    fn failure_of(s: &Scenario, index: usize, at_s: f64) -> (NodeId, DisruptionPlan) {
        // Index into the *target* list (skipping the sink).
        let target = s.field().target_ids()[index];
        (
            target,
            DisruptionPlan {
                disruptions: vec![Disruption::TargetFailure { target, at_s }],
            },
        )
    }

    #[test]
    fn empty_disruption_plan_matches_the_static_engine_exactly() {
        let s = scenario(41);
        let plan = BTctp::new().plan(&s).unwrap();
        let config = SimulationConfig::timing_only();
        let static_outcome = crate::Simulation::with_config(&s, &plan, config).run_for(30_000.0);
        let empty = DisruptionPlan::none();
        let dynamic = DynamicSimulation::new(&s, &plan, &empty)
            .with_config(config)
            .run_for(30_000.0);
        assert_eq!(dynamic.outcome, static_outcome);
        assert!(dynamic.timeline.is_empty());
        assert_eq!(dynamic.replan_count(), 0);
        assert!(dynamic.phase_boundaries_s.is_empty());
    }

    #[test]
    fn failed_targets_receive_no_visits_after_the_failure() {
        let s = scenario(43);
        let plan = BTctp::new().plan(&s).unwrap();
        let (victim, disruptions) = failure_of(&s, 2, 8_000.0);
        let outcome = DynamicSimulation::new(&s, &plan, &disruptions)
            .with_config(SimulationConfig::timing_only())
            .run_for(40_000.0);
        let after: Vec<f64> = outcome
            .outcome
            .visits
            .iter()
            .filter(|v| v.node == victim && v.time_s > 8_000.0)
            .map(|v| v.time_s)
            .collect();
        assert!(after.is_empty(), "dead target visited at {after:?}");
        // Without a replanner the mules keep the old cycle: other targets
        // are still served.
        assert!(outcome.outcome.total_visits() > 0);
        assert_eq!(outcome.timeline.len(), 1);
        assert_eq!(outcome.phase_boundaries_s, vec![8_000.0]);
    }

    #[test]
    fn replanning_shortens_the_cycle_after_a_failure() {
        let s = scenario(47);
        let plan = BTctp::new().plan(&s).unwrap();
        let (victim, disruptions) = failure_of(&s, 0, 6_000.0);
        let replanner = ReplanWithPlanner::new(BTctp::new());
        let config = SimulationConfig::timing_only();
        let with_replan = DynamicSimulation::new(&s, &plan, &disruptions)
            .with_config(config)
            .with_replanner(&replanner)
            .run_for(60_000.0);
        let without = DynamicSimulation::new(&s, &plan, &disruptions)
            .with_config(config)
            .run_for(60_000.0);
        assert_eq!(with_replan.replan_count(), 1);
        assert_eq!(with_replan.replan_times_s, vec![6_000.0]);
        // The replanned fleet stops travelling to the dead target, so the
        // surviving targets are visited at least as often.
        let survivors: Vec<NodeId> = s
            .patrolled_ids()
            .into_iter()
            .filter(|&id| id != victim)
            .collect();
        let count_visits = |o: &DynamicOutcome| -> usize {
            o.outcome
                .visits
                .iter()
                .filter(|v| survivors.contains(&v.node) && v.time_s > 6_000.0)
                .count()
        };
        assert!(
            count_visits(&with_replan) >= count_visits(&without),
            "replanning must not reduce surviving-target service"
        );
    }

    #[test]
    fn breakdown_with_replanning_keeps_every_target_covered() {
        let s = scenario(53);
        let plan = BTctp::new().plan(&s).unwrap();
        let disruptions = DisruptionPlan {
            disruptions: vec![Disruption::MuleBreakdown {
                mule: 1,
                at_s: 10_000.0,
            }],
        };
        let replanner = ReplanWithPlanner::new(BTctp::new());
        let outcome = DynamicSimulation::new(&s, &plan, &disruptions)
            .with_config(SimulationConfig::timing_only())
            .with_replanner(&replanner)
            .run_for(80_000.0);
        assert_eq!(outcome.replan_count(), 1);
        let broken = &outcome.outcome.mules[1];
        assert!(matches!(
            broken.status,
            crate::MuleStatus::BrokenDown { .. }
        ));
        assert!(!outcome.outcome.all_mules_survived());
        // The survivors keep every target served after the breakdown.
        let per_node = outcome.outcome.visit_times_per_node();
        for id in s.patrolled_ids() {
            let late_visits = per_node
                .get(&id)
                .map(|t| t.iter().filter(|&&x| x > 10_000.0).count())
                .unwrap_or(0);
            assert!(late_visits > 0, "target {id} abandoned after breakdown");
        }
        // The broken mule never moves after its breakdown.
        let last_visit_of_broken = outcome
            .outcome
            .visits
            .iter()
            .filter(|v| v.mule_index == 1)
            .map(|v| v.time_s)
            .fold(0.0, f64::max);
        assert!(last_visit_of_broken <= 10_000.0);
    }

    #[test]
    fn late_targets_join_the_patrol_after_arrival_when_replanning() {
        let s = scenario(59);
        let late_target = s.field().target_ids()[4];
        let disruptions = DisruptionPlan {
            disruptions: vec![Disruption::TargetArrival {
                target: late_target,
                at_s: 12_000.0,
            }],
        };
        // Plan on the initially-active world (late target excluded).
        let initial_scenario = s.restricted(&[late_target], s.mule_starts().to_vec());
        let plan = BTctp::new().plan(&initial_scenario).unwrap();
        let replanner = ReplanWithPlanner::new(BTctp::new());
        let outcome = DynamicSimulation::new(&s, &plan, &disruptions)
            .with_config(SimulationConfig::timing_only())
            .with_replanner(&replanner)
            .run_for(60_000.0);
        let visit_times: Vec<f64> = outcome
            .outcome
            .visits
            .iter()
            .filter(|v| v.node == late_target)
            .map(|v| v.time_s)
            .collect();
        assert!(!visit_times.is_empty(), "late target never visited");
        assert!(
            visit_times.iter().all(|&t| t >= 12_000.0),
            "late target visited before it arrived: {visit_times:?}"
        );
        // Its first collection's data age counts from arrival, not t=0.
        let first = outcome
            .outcome
            .visits
            .iter()
            .find(|v| v.node == late_target)
            .unwrap();
        assert!(first.data_age_s <= first.time_s - 12_000.0 + 1e-9);
    }

    #[test]
    fn speed_windows_slow_the_fleet_while_open() {
        let s = scenario(61);
        let plan = BTctp::new().plan(&s).unwrap();
        let disruptions = DisruptionPlan {
            disruptions: vec![Disruption::SpeedWindow {
                start_s: 5_000.0,
                end_s: 15_000.0,
                factor: 0.5,
            }],
        };
        let slowed = DynamicSimulation::new(&s, &plan, &disruptions)
            .with_config(SimulationConfig::timing_only())
            .run_for(30_000.0);
        let empty = DisruptionPlan::none();
        let nominal = DynamicSimulation::new(&s, &plan, &empty)
            .with_config(SimulationConfig::timing_only())
            .run_for(30_000.0);
        assert!(
            slowed.outcome.total_distance_m() < nominal.outcome.total_distance_m(),
            "a half-speed window must reduce distance covered"
        );
        assert_eq!(slowed.phase_boundaries_s, vec![5_000.0, 15_000.0]);
        // Both window edges land on the timeline.
        assert_eq!(slowed.timeline.len(), 2);
    }

    #[test]
    fn overlapping_speed_windows_unwind_without_restoring_early() {
        let s = scenario(73);
        let plan = BTctp::new().plan(&s).unwrap();
        // Two half-speed windows overlapping in [8_000, 12_000]; full
        // speed must only return at 16_000, not at the first window's end.
        let overlapping = DisruptionPlan {
            disruptions: vec![
                Disruption::SpeedWindow {
                    start_s: 4_000.0,
                    end_s: 12_000.0,
                    factor: 0.5,
                },
                Disruption::SpeedWindow {
                    start_s: 8_000.0,
                    end_s: 16_000.0,
                    factor: 0.5,
                },
            ],
        };
        let config = SimulationConfig::timing_only();
        let run = |plan_d: &DisruptionPlan| {
            DynamicSimulation::new(&s, &plan, plan_d)
                .with_config(config)
                .run_for(30_000.0)
        };
        let overlapped = run(&overlapping);
        // During the overlap the fleet runs at 0.25×, and it is still at
        // 0.5× in [12_000, 16_000] — so it must cover strictly less
        // distance than two disjoint windows of the same total length.
        let disjoint = DisruptionPlan {
            disruptions: vec![
                Disruption::SpeedWindow {
                    start_s: 4_000.0,
                    end_s: 10_000.0,
                    factor: 0.5,
                },
                Disruption::SpeedWindow {
                    start_s: 18_000.0,
                    end_s: 24_000.0,
                    factor: 0.5,
                },
            ],
        };
        let separated = run(&disjoint);
        assert!(
            overlapped.outcome.total_distance_m() < separated.outcome.total_distance_m(),
            "overlap must compose ({} vs {})",
            overlapped.outcome.total_distance_m(),
            separated.outcome.total_distance_m()
        );
        // The timeline narrates the composed factor at each edge:
        // ×0.50 → ×0.25 → ×0.50 → ×1.00.
        let factors: Vec<&str> = overlapped
            .timeline
            .iter()
            .map(|e| e.description.as_str())
            .collect();
        assert_eq!(
            factors,
            vec![
                "fleet speed ×0.50",
                "fleet speed ×0.25",
                "fleet speed ×0.50",
                "fleet speed ×1.00",
            ]
        );
    }

    #[test]
    fn dynamic_runs_are_deterministic() {
        let s = scenario(67);
        let plan = BTctp::new().plan(&s).unwrap();
        let disruptions = DisruptionPlan::seeded(
            &s,
            &DisruptionConfig {
                seed: 5,
                horizon_s: 40_000.0,
                target_failures: 2,
                recover_after_s: Some(5_000.0),
                late_arrivals: 1,
                mule_breakdowns: 1,
                speed_windows: 1,
                speed_factor: 0.7,
            },
        );
        let replanner = ReplanWithPlanner::new(BTctp::new());
        let run = || {
            DynamicSimulation::new(&s, &plan, &disruptions)
                .with_config(SimulationConfig::timing_only())
                .with_replanner(&replanner)
                .run_for(40_000.0)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.events_fired > 0);
        assert!(!a.timeline.is_empty());
    }

    #[test]
    fn recovered_targets_are_served_again() {
        let s = scenario(71);
        let plan = BTctp::new().plan(&s).unwrap();
        let victim = s.field().target_ids()[1];
        let disruptions = DisruptionPlan {
            disruptions: vec![
                Disruption::TargetFailure {
                    target: victim,
                    at_s: 8_000.0,
                },
                Disruption::TargetRecovery {
                    target: victim,
                    at_s: 20_000.0,
                },
            ],
        };
        let replanner = ReplanWithPlanner::new(BTctp::new());
        let outcome = DynamicSimulation::new(&s, &plan, &disruptions)
            .with_config(SimulationConfig::timing_only())
            .with_replanner(&replanner)
            .run_for(60_000.0);
        assert_eq!(outcome.replan_count(), 2);
        let times: Vec<f64> = outcome
            .outcome
            .visits
            .iter()
            .filter(|v| v.node == victim)
            .map(|v| v.time_s)
            .collect();
        assert!(
            times.iter().any(|&t| t > 20_000.0),
            "recovered target never served again: {times:?}"
        );
        assert!(
            !times.iter().any(|&t| (8_000.0..20_000.0).contains(&t)),
            "failed target served while down: {times:?}"
        );
    }
}
