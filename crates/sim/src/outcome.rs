//! Simulation results: the visit log and per-mule reports.

use crate::mule::MuleReport;
use mule_net::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One data-collection visit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VisitRecord {
    /// Simulation time of the visit, seconds.
    pub time_s: f64,
    /// The visiting mule.
    pub mule_index: usize,
    /// The visited node.
    pub node: NodeId,
    /// Age of the oldest buffered data collected at this visit, seconds —
    /// the paper's Data Collection Delay Time sample for this visit.
    pub data_age_s: f64,
    /// Bytes collected.
    pub bytes: f64,
}

/// The complete result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationOutcome {
    /// Name of the planner whose plan was executed.
    pub planner_name: String,
    /// Horizon the simulation covered, seconds.
    pub horizon_s: f64,
    /// Every visit, in non-decreasing time order.
    pub visits: Vec<VisitRecord>,
    /// Per-mule end-of-run reports, in mule-index order.
    pub mules: Vec<MuleReport>,
}

impl SimulationOutcome {
    /// Visit times grouped per node, each list sorted ascending.
    pub fn visit_times_per_node(&self) -> BTreeMap<NodeId, Vec<f64>> {
        let mut map: BTreeMap<NodeId, Vec<f64>> = BTreeMap::new();
        for v in &self.visits {
            map.entry(v.node).or_default().push(v.time_s);
        }
        for times in map.values_mut() {
            times.sort_by(|a, b| a.total_cmp(b));
        }
        map
    }

    /// Data-age samples grouped per node, in visit order.
    pub fn data_ages_per_node(&self) -> BTreeMap<NodeId, Vec<f64>> {
        let mut map: BTreeMap<NodeId, Vec<f64>> = BTreeMap::new();
        let mut visits = self.visits.clone();
        visits.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
        for v in &visits {
            map.entry(v.node).or_default().push(v.data_age_s);
        }
        map
    }

    /// Total number of visits across all nodes.
    pub fn total_visits(&self) -> usize {
        self.visits.len()
    }

    /// Total distance travelled by the fleet, metres.
    pub fn total_distance_m(&self) -> f64 {
        self.mules.iter().map(|m| m.distance_m).sum()
    }

    /// Total energy consumed by the fleet, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.mules.iter().map(|m| m.ledger.total()).sum()
    }

    /// Total bytes delivered to the sink by the fleet.
    pub fn total_delivered_bytes(&self) -> f64 {
        self.mules.iter().map(|m| m.delivered_bytes).sum()
    }

    /// Returns `true` when every mule survived the run (no battery ever
    /// emptied) — the property RW-TCTP is designed to guarantee.
    pub fn all_mules_survived(&self) -> bool {
        self.mules.iter().all(|m| m.status.survived())
    }

    /// Minimum number of visits received by any node that was visited at
    /// all; zero when there were no visits.
    pub fn min_visits_per_node(&self) -> usize {
        self.visit_times_per_node()
            .values()
            .map(Vec::len)
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mule::MuleStatus;
    use mule_energy::ConsumptionLedger;

    fn sample_outcome() -> SimulationOutcome {
        let mk = |t: f64, mule: usize, node: usize, age: f64| VisitRecord {
            time_s: t,
            mule_index: mule,
            node: NodeId(node),
            data_age_s: age,
            bytes: age * 10.0,
        };
        SimulationOutcome {
            planner_name: "test".to_string(),
            horizon_s: 100.0,
            visits: vec![
                mk(10.0, 0, 1, 10.0),
                mk(20.0, 1, 2, 20.0),
                mk(30.0, 0, 1, 20.0),
                mk(55.0, 1, 1, 25.0),
            ],
            mules: vec![
                MuleReport {
                    mule_index: 0,
                    status: MuleStatus::Active,
                    distance_m: 100.0,
                    visits: 2,
                    recharges: 0,
                    remaining_energy_j: 50.0,
                    ledger: ConsumptionLedger::new(),
                    delivered_bytes: 300.0,
                },
                MuleReport {
                    mule_index: 1,
                    status: MuleStatus::Depleted { at_s: 60.0 },
                    distance_m: 80.0,
                    visits: 2,
                    recharges: 1,
                    remaining_energy_j: 0.0,
                    ledger: ConsumptionLedger::new(),
                    delivered_bytes: 150.0,
                },
            ],
        }
    }

    #[test]
    fn visit_times_are_grouped_and_sorted_per_node() {
        let o = sample_outcome();
        let per_node = o.visit_times_per_node();
        assert_eq!(per_node[&NodeId(1)], vec![10.0, 30.0, 55.0]);
        assert_eq!(per_node[&NodeId(2)], vec![20.0]);
        assert_eq!(o.total_visits(), 4);
        assert_eq!(o.min_visits_per_node(), 1);
    }

    #[test]
    fn data_ages_follow_visit_order() {
        let o = sample_outcome();
        let ages = o.data_ages_per_node();
        assert_eq!(ages[&NodeId(1)], vec![10.0, 20.0, 25.0]);
    }

    #[test]
    fn fleet_aggregates_sum_over_mules() {
        let o = sample_outcome();
        assert_eq!(o.total_distance_m(), 180.0);
        assert_eq!(o.total_delivered_bytes(), 450.0);
        assert!(!o.all_mules_survived());
    }

    #[test]
    fn empty_outcome_is_total() {
        let o = SimulationOutcome {
            planner_name: "empty".into(),
            horizon_s: 0.0,
            visits: vec![],
            mules: vec![],
        };
        assert_eq!(o.total_visits(), 0);
        assert_eq!(o.min_visits_per_node(), 0);
        assert!(o.all_mules_survived());
        assert_eq!(o.total_energy_j(), 0.0);
    }
}
