//! # mule-sim
//!
//! A deterministic discrete-event simulator for data-mule patrolling.
//!
//! The planners in `patrol-core` output a [`patrol_core::PatrolPlan`]; this
//! crate executes it against the scenario's field: mules move at constant
//! speed along their itineraries, collect the data buffered at each target
//! they reach, deliver it when they pass the sink, spend energy per metre
//! and per collection, recharge at the recharge station, and die if their
//! battery empties. Every visit is recorded as a [`VisitRecord`] so the
//! metrics crate can compute visiting intervals, DCDT and their standard
//! deviations exactly as the paper's evaluation does.
//!
//! * [`SimulationConfig`] — speed, energy model, dwell times, horizon.
//! * [`Simulation`] / [`SimulationOutcome`] — the engine and its results.
//! * [`montecarlo`] — rayon-parallel replication sweeps ("average of 20
//!   simulations", §5.1).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod config;
pub mod engine;
pub mod montecarlo;
pub mod mule;
pub mod outcome;
pub mod trace;

pub use config::SimulationConfig;
pub use engine::Simulation;
pub use montecarlo::{run_replicated, ReplicatedOutcome};
pub use mule::{MuleReport, MuleStatus};
pub use outcome::{SimulationOutcome, VisitRecord};
pub use trace::{mules_to_csv, visits_to_csv, write_csv_files};
