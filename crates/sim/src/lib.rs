//! # mule-sim
//!
//! A deterministic discrete-event simulator for data-mule patrolling.
//!
//! The planners in `patrol-core` output a [`patrol_core::PatrolPlan`]; this
//! crate executes it against the scenario's field: mules move at constant
//! speed along their itineraries, collect the data buffered at each target
//! they reach, deliver it when they pass the sink, spend energy per metre
//! and per collection, recharge at the recharge station, and die if their
//! battery empties. Every visit is recorded as a [`VisitRecord`] so the
//! metrics crate can compute visiting intervals, DCDT and their standard
//! deviations exactly as the paper's evaluation does.
//!
//! * [`SimulationConfig`] — speed, energy model, dwell times, horizon.
//! * [`Simulation`] / [`SimulationOutcome`] — the engine and its results.
//! * [`montecarlo`] — parallel replication sweeps ("average of 20
//!   simulations", §5.1) and [`run_sweep`], the executor for declarative
//!   [`mule_workload::SweepSpec`] experiment grids. Both run on the
//!   `mule-par` worker pool (via the `rayon` shim's prelude) and return
//!   results in input order, bit-identical to a single-worker run.
//!
//! ## The event timeline
//!
//! Since the `mule-events` refactor the engine runs on a
//! [`mule_events::SimClock`]: one binary-heap timeline of typed,
//! subject-targeted events with deterministic `(time, kind, subject,
//! insertion)` ordering. A static run places only waypoint arrivals on the
//! timeline; a dynamic run adds disruptions.
//!
//! ## Disruptions and replanning
//!
//! [`DynamicSimulation`] executes a
//! [`mule_workload::DisruptionPlan`] — seeded target failures/recoveries,
//! late target arrivals, mule breakdowns and speed windows — against a
//! plan, optionally consulting a [`patrol_core::Replanner`] after every
//! world-changing disruption. Failed targets are skipped (their data is
//! lost, not buffered); recovering and late-arriving targets restart their
//! buffers at the event time; broken mules stop where their last committed
//! leg ends; surviving mules adopt each fresh plan at their next waypoint.
//! The [`DynamicOutcome`] records the applied-event timeline and the phase
//! boundaries that `mule_metrics`' per-phase delay report consumes.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod config;
pub mod dynamics;
pub mod engine;
pub mod montecarlo;
pub mod mule;
pub mod outcome;
pub mod trace;

pub use config::SimulationConfig;
pub use dynamics::{DynamicOutcome, DynamicSimulation, TimelineEntry};
pub use engine::Simulation;
pub use montecarlo::{
    run_replicated, run_sweep, ReplicatedOutcome, SweepCellError, SweepCellOutcome,
};
pub use mule::{MuleReport, MuleStatus};
pub use outcome::{SimulationOutcome, VisitRecord};
pub use trace::{mules_to_csv, visits_to_csv, write_csv_files};
