//! The discrete-event simulation engine.
//!
//! Because every mule moves at constant speed along a fixed itinerary, the
//! engine can compute exact waypoint-arrival times instead of integrating a
//! time step. A global priority queue keeps the arrivals of all mules in
//! time order so that cross-mule effects — two mules collecting from the
//! same target, which resets its data age for both — happen in the right
//! sequence.

use crate::config::SimulationConfig;
use crate::mule::{MuleState, MuleStatus};
use crate::outcome::{SimulationOutcome, VisitRecord};
use mule_energy::{Battery, ConsumptionLedger, EnergyCause};
use mule_geom::Point;
use mule_net::{DataBuffer, MulePayload, NodeId, NodeKind};
use mule_workload::Scenario;
use patrol_core::PatrolPlan;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// A scheduled waypoint arrival. Ordered so that the *earliest* event pops
/// first from a max-heap; ties broken by mule index for determinism.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Arrival {
    time_s: f64,
    mule: usize,
}

impl Eq for Arrival {}

impl Ord for Arrival {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse the time ordering (max-heap → min-queue); NaNs cannot
        // occur because all times are finite sums of finite legs.
        other
            .time_s
            .partial_cmp(&self.time_s)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.mule.cmp(&self.mule))
    }
}

impl PartialOrd for Arrival {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Precomputed per-mule geometry: the itinerary's waypoint positions and
/// cumulative arc lengths.
struct MuleRoute {
    positions: Vec<Point>,
    nodes: Vec<NodeId>,
    /// `cumulative[i]` is the arc length from waypoint 0 to waypoint `i`;
    /// one extra entry holds the full cycle length.
    cumulative: Vec<f64>,
    total_length: f64,
}

impl MuleRoute {
    fn from_itinerary(it: &patrol_core::MuleItinerary) -> Self {
        let positions: Vec<Point> = it.cycle.iter().map(|w| w.position).collect();
        let nodes: Vec<NodeId> = it.cycle.iter().map(|w| w.node).collect();
        let mut cumulative = Vec::with_capacity(positions.len() + 1);
        let mut acc = 0.0;
        cumulative.push(0.0);
        for i in 0..positions.len() {
            let next = (i + 1) % positions.len().max(1);
            acc += positions[i].distance(&positions[next]);
            cumulative.push(acc);
        }
        let total_length = if positions.len() >= 2 { acc } else { 0.0 };
        MuleRoute {
            positions,
            nodes,
            cumulative,
            total_length,
        }
    }

    fn len(&self) -> usize {
        self.positions.len()
    }
}

/// The simulator: executes a [`PatrolPlan`] against a [`Scenario`].
pub struct Simulation<'a> {
    scenario: &'a Scenario,
    plan: &'a PatrolPlan,
    config: SimulationConfig,
}

impl<'a> Simulation<'a> {
    /// Creates a simulation with the default configuration (paper energy
    /// model, 80 000 s horizon).
    pub fn new(scenario: &'a Scenario, plan: &'a PatrolPlan) -> Self {
        Simulation {
            scenario,
            plan,
            config: SimulationConfig::default(),
        }
    }

    /// Creates a simulation with an explicit configuration.
    pub fn with_config(
        scenario: &'a Scenario,
        plan: &'a PatrolPlan,
        config: SimulationConfig,
    ) -> Self {
        Simulation {
            scenario,
            plan,
            config,
        }
    }

    /// Runs until the configured horizon.
    pub fn run(&self) -> SimulationOutcome {
        self.run_for(self.config.horizon_s)
    }

    /// Runs until `horizon_s` seconds of simulated time.
    pub fn run_for(&self, horizon_s: f64) -> SimulationOutcome {
        let horizon = horizon_s.max(0.0);
        let speed = self.config.energy.speed_m_per_s.max(1e-9);
        let field = self.scenario.field();

        // Data buffers for targets; the sink and recharge station buffer no
        // data but still have their visits recorded.
        let mut buffers: HashMap<NodeId, DataBuffer> = field
            .nodes()
            .iter()
            .filter(|n| n.kind == NodeKind::Target)
            .map(|n| (n.id, DataBuffer::new(self.scenario.data_rate_bps())))
            .collect();
        let mut last_visit: HashMap<NodeId, f64> =
            field.nodes().iter().map(|n| (n.id, 0.0)).collect();

        // Per-mule routes and states.
        let routes: Vec<MuleRoute> = self
            .plan
            .itineraries
            .iter()
            .map(MuleRoute::from_itinerary)
            .collect();
        let mut states: Vec<MuleState> = self
            .plan
            .itineraries
            .iter()
            .map(|it| MuleState {
                index: it.mule_index,
                battery: Battery::full(self.config.energy.initial_energy_j),
                ledger: ConsumptionLedger::new(),
                payload: MulePayload::new(),
                distance_m: 0.0,
                visits: 0,
                recharges: 0,
                status: if it.cycle.len() < 2 {
                    MuleStatus::Idle
                } else {
                    MuleStatus::Active
                },
                next_waypoint: 0,
                next_arrival_s: 0.0,
            })
            .collect();

        let mut queue: BinaryHeap<Arrival> = BinaryHeap::new();
        let mut visits: Vec<VisitRecord> = Vec::new();

        // Schedule the first waypoint arrival of every mule: it travels from
        // its start position to its entry point on the cycle (the
        // location-initialisation move), optionally holds until the whole
        // fleet is in position, then proceeds to the first waypoint at or
        // after its entry offset.
        let deploy_dists: Vec<f64> = self
            .plan
            .itineraries
            .iter()
            .enumerate()
            .map(|(m, it)| {
                if routes[m].len() == 0 {
                    0.0
                } else {
                    it.start_position.distance(&it.entry_point())
                }
            })
            .collect();
        let fleet_ready_s = deploy_dists
            .iter()
            .cloned()
            .fold(0.0, f64::max)
            / speed;

        for (m, it) in self.plan.itineraries.iter().enumerate() {
            let route = &routes[m];
            if route.len() == 0 {
                continue;
            }
            let entry_offset = if route.total_length > 1e-9 {
                it.entry_offset_m.rem_euclid(route.total_length)
            } else {
                0.0
            };
            let deploy_dist = deploy_dists[m];

            // First waypoint at or after the entry offset.
            let (first_wp, partial_dist) = if route.total_length <= 1e-9 {
                (0usize, 0.0)
            } else {
                let mut found = None;
                for i in 0..route.len() {
                    if route.cumulative[i] >= entry_offset - 1e-9 {
                        found = Some((i, route.cumulative[i] - entry_offset));
                        break;
                    }
                }
                found.unwrap_or((0, route.total_length - entry_offset))
            };

            let travel = deploy_dist + partial_dist.max(0.0);
            if !self.consume_movement(&mut states[m], travel, route, first_wp) {
                states[m].status = MuleStatus::Depleted { at_s: 0.0 };
                continue; // died during deployment
            }
            let patrol_start_s = if self.config.synchronized_start {
                fleet_ready_s
            } else {
                deploy_dist / speed
            };
            states[m].next_waypoint = first_wp;
            states[m].next_arrival_s = patrol_start_s + partial_dist.max(0.0) / speed;
            if states[m].next_arrival_s <= horizon {
                queue.push(Arrival {
                    time_s: states[m].next_arrival_s,
                    mule: m,
                });
            }
        }

        // Main event loop.
        while let Some(Arrival { time_s: now, mule }) = queue.pop() {
            if now > horizon {
                continue;
            }
            let route = &routes[mule];
            let wp = states[mule].next_waypoint;
            let node_id = route.nodes[wp];
            let node_kind = field.node(node_id).map(|n| n.kind);

            // --- Visit processing -------------------------------------------------
            match node_kind {
                Some(NodeKind::Target) => {
                    let age = now - last_visit.get(&node_id).copied().unwrap_or(0.0);
                    let bytes = buffers
                        .get_mut(&node_id)
                        .map(|b| b.collect(now).0)
                        .unwrap_or(0.0);
                    states[mule].payload.load(node_id, bytes);
                    if self.config.energy_enabled {
                        let e = self.config.energy.collection_energy(1);
                        states[mule].battery.draw(e);
                        states[mule].ledger.record(EnergyCause::Collection, e);
                    }
                    states[mule].visits += 1;
                    last_visit.insert(node_id, now);
                    visits.push(VisitRecord {
                        time_s: now,
                        mule_index: mule,
                        node: node_id,
                        data_age_s: age.max(0.0),
                        bytes,
                    });
                }
                Some(NodeKind::Sink) => {
                    let age = now - last_visit.get(&node_id).copied().unwrap_or(0.0);
                    states[mule].payload.deliver_all();
                    states[mule].visits += 1;
                    last_visit.insert(node_id, now);
                    visits.push(VisitRecord {
                        time_s: now,
                        mule_index: mule,
                        node: node_id,
                        data_age_s: age.max(0.0),
                        bytes: 0.0,
                    });
                }
                Some(NodeKind::RechargeStation) => {
                    if self.config.energy_enabled {
                        states[mule].battery.recharge_full();
                    }
                    states[mule].recharges += 1;
                    last_visit.insert(node_id, now);
                }
                None => {}
            }

            // --- Schedule the next leg -------------------------------------------
            if route.total_length <= 1e-9 && self.config.collection_dwell_s <= 0.0 {
                // Degenerate zero-length cycle: visiting once is all the
                // progress that can ever be made.
                continue;
            }
            let next_wp = (wp + 1) % route.len();
            let leg = route.positions[wp].distance(&route.positions[next_wp]);
            if !self.consume_movement(&mut states[mule], leg, route, next_wp) {
                states[mule].status = MuleStatus::Depleted { at_s: now };
                continue;
            }
            let arrival = now + self.config.collection_dwell_s + leg / speed;
            states[mule].next_waypoint = next_wp;
            states[mule].next_arrival_s = arrival;
            if arrival <= horizon {
                queue.push(Arrival {
                    time_s: arrival,
                    mule,
                });
            }
        }

        visits.sort_by(|a, b| {
            a.time_s
                .partial_cmp(&b.time_s)
                .unwrap_or(Ordering::Equal)
                .then(a.mule_index.cmp(&b.mule_index))
        });

        SimulationOutcome {
            planner_name: self.plan.planner_name.clone(),
            horizon_s: horizon,
            visits,
            mules: states.iter().map(MuleState::report).collect(),
        }
    }

    /// Charges the movement of `distance_m` metres to the mule. Returns
    /// `false` when the battery cannot afford it (the mule is stranded).
    fn consume_movement(
        &self,
        state: &mut MuleState,
        distance_m: f64,
        route: &MuleRoute,
        destination_wp: usize,
    ) -> bool {
        if distance_m <= 0.0 {
            return true;
        }
        if !self.config.energy_enabled {
            state.distance_m += distance_m;
            return true;
        }
        let energy = self.config.energy.movement_energy(distance_m);
        if !state.battery.can_afford(energy) {
            // Travel as far as the remaining charge allows, then strand.
            let affordable = self.config.energy.range_on(state.battery.remaining());
            state.distance_m += affordable.min(distance_m);
            state.battery.draw(energy);
            return false;
        }
        state.battery.draw(energy);
        state.distance_m += distance_m;
        // Movement towards (or away from) the recharge station is accounted
        // as recharge-detour energy; everything else is patrol movement.
        let field = self.scenario.field();
        let dest_is_station = field
            .node(route.nodes[destination_wp])
            .map(|n| n.kind == NodeKind::RechargeStation)
            .unwrap_or(false);
        let cause = if dest_is_station {
            EnergyCause::RechargeMovement
        } else {
            EnergyCause::PatrolMovement
        };
        state.ledger.record(cause, energy);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_energy::EnergyModel;
    use patrol_core::{baselines::ChbPlanner, BTctp, Planner, RwTctp};
    use mule_workload::{ScenarioConfig, WeightSpec};

    fn scenario(seed: u64) -> Scenario {
        ScenarioConfig::paper_default().with_seed(seed).generate()
    }

    #[test]
    fn btctp_run_visits_every_patrolled_node_repeatedly() {
        let s = scenario(3);
        let plan = BTctp::new().plan(&s).unwrap();
        let outcome = Simulation::with_config(&s, &plan, SimulationConfig::timing_only())
            .run_for(40_000.0);
        let per_node = outcome.visit_times_per_node();
        for id in s.patrolled_ids() {
            let times = per_node.get(&id).expect("every node visited");
            assert!(times.len() >= 3, "node {id} visited {} times", times.len());
            // Times strictly increase.
            for w in times.windows(2) {
                assert!(w[1] > w[0] - 1e-9);
            }
        }
        assert!(outcome.all_mules_survived());
        assert!(outcome.total_distance_m() > 0.0);
    }

    #[test]
    fn visit_times_never_exceed_the_horizon() {
        let s = scenario(5);
        let plan = BTctp::new().plan(&s).unwrap();
        let outcome = Simulation::with_config(&s, &plan, SimulationConfig::timing_only())
            .run_for(5_000.0);
        assert!(outcome.visits.iter().all(|v| v.time_s <= 5_000.0));
        assert_eq!(outcome.horizon_s, 5_000.0);
    }

    #[test]
    fn btctp_intervals_are_constant_after_warmup() {
        // The headline B-TCTP property: once all mules are in position,
        // every target is visited every |P|/(n·v) seconds exactly.
        let s = scenario(7);
        let plan = BTctp::new().plan(&s).unwrap();
        let outcome = Simulation::with_config(&s, &plan, SimulationConfig::timing_only())
            .run_for(60_000.0);
        let expected = plan.itineraries[0].cycle_length()
            / (plan.mule_count() as f64 * 2.0 /* m/s */);
        for (_, times) in outcome.visit_times_per_node() {
            // Skip the warm-up visits (mules converging onto their start
            // points), then check steady-state intervals.
            if times.len() < 5 {
                continue;
            }
            for w in times[2..].windows(2) {
                let interval = w[1] - w[0];
                assert!(
                    (interval - expected).abs() < 1.0,
                    "steady-state interval {interval} vs expected {expected}"
                );
            }
        }
    }

    #[test]
    fn chb_without_spreading_yields_unequal_intervals() {
        let s = scenario(11);
        let plan = ChbPlanner::new().plan(&s).unwrap();
        let outcome = Simulation::with_config(&s, &plan, SimulationConfig::timing_only())
            .run_for(60_000.0);
        // All mules bunched: consecutive visits to a target alternate between
        // "very soon" (the bunch passes) and "a full lap later".
        let mut spreads = Vec::new();
        for (_, times) in outcome.visit_times_per_node() {
            if times.len() >= 6 {
                let intervals: Vec<f64> = times[1..].windows(2).map(|w| w[1] - w[0]).collect();
                let max = intervals.iter().cloned().fold(f64::MIN, f64::max);
                let min = intervals.iter().cloned().fold(f64::MAX, f64::min);
                spreads.push(max - min);
            }
        }
        assert!(
            spreads.iter().any(|&x| x > 100.0),
            "CHB should show uneven intervals, spreads {spreads:?}"
        );
    }

    #[test]
    fn energy_accounting_balances_with_distance() {
        let s = scenario(13);
        let plan = BTctp::new().plan(&s).unwrap();
        let outcome = Simulation::new(&s, &plan).run_for(10_000.0);
        for m in &outcome.mules {
            let movement = m.ledger.get(EnergyCause::PatrolMovement)
                + m.ledger.get(EnergyCause::RechargeMovement);
            let expected = m.distance_m * EnergyModel::paper_default().move_cost_j_per_m;
            assert!(
                (movement - expected).abs() < 1e-6,
                "movement energy {movement} vs distance-derived {expected}"
            );
        }
    }

    #[test]
    fn mules_strand_when_energy_runs_out_without_recharge() {
        let s = scenario(17);
        let plan = BTctp::new().plan(&s).unwrap();
        let tiny = EnergyModel {
            initial_energy_j: 2_000.0, // a couple hundred metres of range
            ..EnergyModel::paper_default()
        };
        let outcome = Simulation::with_config(
            &s,
            &plan,
            SimulationConfig::default().with_energy(tiny),
        )
        .run_for(50_000.0);
        assert!(
            outcome.mules.iter().any(|m| !m.status.survived()),
            "with a tiny battery and no recharge station some mule must die"
        );
    }

    #[test]
    fn rwtctp_keeps_mules_alive_via_recharging() {
        let s = ScenarioConfig::paper_default()
            .with_targets(10)
            .with_weights(WeightSpec::UniformVips { count: 2, weight: 2 })
            .with_recharge_station(true)
            .with_seed(19)
            .generate();
        let planner = RwTctp::default();
        let plan = planner.plan(&s).unwrap();
        let outcome = Simulation::new(&s, &plan).run_for(100_000.0);
        assert!(outcome.all_mules_survived(), "RW-TCTP mules must not die");
        assert!(
            outcome.mules.iter().map(|m| m.recharges).sum::<usize>() > 0,
            "mules should have recharged at least once over a long horizon"
        );
    }

    #[test]
    fn sink_deliveries_accumulate_bytes() {
        let s = scenario(23);
        let plan = BTctp::new().plan(&s).unwrap();
        let outcome = Simulation::with_config(&s, &plan, SimulationConfig::timing_only())
            .run_for(40_000.0);
        assert!(outcome.total_delivered_bytes() > 0.0);
    }

    #[test]
    fn zero_horizon_produces_no_visits() {
        let s = scenario(29);
        let plan = BTctp::new().plan(&s).unwrap();
        let outcome = Simulation::with_config(&s, &plan, SimulationConfig::timing_only())
            .run_for(0.0);
        // Only mules whose deployment distance is exactly zero could visit
        // at t = 0; with the sink at the field centre that never happens for
        // the paper layout.
        assert!(outcome.total_visits() <= s.patrolled_ids().len());
        assert_eq!(outcome.horizon_s, 0.0);
    }

    #[test]
    fn idle_itineraries_are_reported_as_idle() {
        let s = ScenarioConfig::paper_default()
            .with_targets(2)
            .with_mules(5)
            .with_seed(8)
            .generate();
        let plan = patrol_core::baselines::SweepPlanner::new().plan(&s).unwrap();
        let outcome = Simulation::with_config(&s, &plan, SimulationConfig::timing_only())
            .run_for(10_000.0);
        assert!(outcome
            .mules
            .iter()
            .any(|m| matches!(m.status, MuleStatus::Idle)));
    }

    #[test]
    fn simulation_is_deterministic() {
        let s = scenario(31);
        let plan = BTctp::new().plan(&s).unwrap();
        let a = Simulation::new(&s, &plan).run_for(20_000.0);
        let b = Simulation::new(&s, &plan).run_for(20_000.0);
        assert_eq!(a, b);
    }
}
