//! The discrete-event simulation engine, built on the `mule-events`
//! timeline.
//!
//! Because every mule moves at constant speed along a fixed itinerary, the
//! engine computes exact waypoint-arrival times instead of integrating a
//! time step. All arrivals — and, in dynamic runs, all disruptions and
//! replans — live on one [`mule_events::SimClock`]: a binary-heap timeline
//! with deterministic `(time, kind, subject, insertion)` ordering, so
//! cross-mule effects (two mules collecting from the same target, a target
//! failing the instant a mule arrives) always resolve in the same order.
//!
//! ## Static runs
//!
//! [`Simulation`] executes a fixed [`PatrolPlan`]: the only events on the
//! timeline are [`EventKind::WaypointArrival`]s, each handler scheduling
//! the mule's next leg. This reproduces the original fixed-plan engine
//! exactly (same arrival arithmetic, same tie-breaking by mule index).
//!
//! ## Dynamic runs
//!
//! [`crate::DynamicSimulation`] additionally compiles a
//! [`mule_workload::DisruptionPlan`] onto the timeline before the run:
//! target failures/recoveries/arrivals, mule breakdowns and speed windows.
//! Disruption kinds order *before* waypoint arrivals at the same
//! timestamp, so an arriving mule always observes the post-disruption
//! world. When a replanner is attached, every world-changing disruption
//! also schedules an [`EventKind::Replan`] at its own timestamp (multiple
//! same-instant disruptions coalesce into one replan); the fresh plan is
//! adopted by each surviving mule when it reaches its already-committed
//! next waypoint (or immediately, if it has no leg in flight).

use crate::config::SimulationConfig;
use crate::dynamics::TimelineEntry;
use crate::mule::{MuleState, MuleStatus};
use crate::outcome::{SimulationOutcome, VisitRecord};
use mule_energy::{Battery, ConsumptionLedger, EnergyCause};
use mule_events::{Event, EventKind, EventSubject, SimClock};
use mule_geom::Point;
use mule_net::{DataBuffer, MulePayload, NodeId, NodeKind};
use mule_workload::{Disruption, DisruptionPlan, Scenario};
use patrol_core::{MuleItinerary, PatrolPlan, ReplanContext, Replanner};
use std::collections::HashMap;

/// Precomputed per-mule geometry: the itinerary's travel vertices and
/// cumulative arc lengths.
///
/// A *vertex* is either a real waypoint (`nodes[i] = Some(id)` — data is
/// collected there) or an intermediate bend of the leg geometry a road
/// metric produced (`nodes[i] = None` — the mule merely passes through).
/// Euclidean itineraries have no bends, so their vertex list is exactly
/// the historical waypoint list and every arrival time is byte-identical.
struct MuleRoute {
    positions: Vec<Point>,
    nodes: Vec<Option<NodeId>>,
    /// `cumulative[i]` is the arc length from vertex 0 to vertex `i`;
    /// one extra entry holds the full cycle length.
    cumulative: Vec<f64>,
    total_length: f64,
}

impl MuleRoute {
    fn from_itinerary(it: &MuleItinerary) -> Self {
        let mut positions: Vec<Point> = Vec::with_capacity(it.cycle.len());
        let mut nodes: Vec<Option<NodeId>> = Vec::with_capacity(it.cycle.len());
        for (i, w) in it.cycle.iter().enumerate() {
            positions.push(w.position);
            nodes.push(Some(w.node));
            if let Some(leg) = it.leg_paths.get(i) {
                for p in leg {
                    positions.push(*p);
                    nodes.push(None);
                }
            }
        }
        let mut cumulative = Vec::with_capacity(positions.len() + 1);
        let mut acc = 0.0;
        cumulative.push(0.0);
        for i in 0..positions.len() {
            let next = (i + 1) % positions.len().max(1);
            acc += positions[i].distance(&positions[next]);
            cumulative.push(acc);
        }
        let total_length = if positions.len() >= 2 { acc } else { 0.0 };
        MuleRoute {
            positions,
            nodes,
            cumulative,
            total_length,
        }
    }

    fn len(&self) -> usize {
        self.positions.len()
    }

    /// The first *real* field node at or after vertex `from` (wrapping),
    /// i.e. where the current run of road bends ultimately leads. Energy
    /// cause attribution uses this: every sub-leg of the approach to a
    /// recharge station is detour energy, not just the final hop. On a
    /// Euclidean route every vertex is a real node, so this is simply
    /// `nodes[from]`.
    fn destination_node(&self, from: usize) -> Option<NodeId> {
        let n = self.len();
        for step in 0..n {
            if let Some(id) = self.nodes[(from + step) % n] {
                return Some(id);
            }
        }
        None
    }

    /// The first vertex at or after `entry_offset` metres along the
    /// cycle, together with the remaining distance to it.
    fn entry_waypoint(&self, entry_offset: f64) -> (usize, f64) {
        if self.total_length <= 1e-9 {
            return (0, 0.0);
        }
        for i in 0..self.len() {
            if self.cumulative[i] >= entry_offset - 1e-9 {
                return (i, self.cumulative[i] - entry_offset);
            }
        }
        (0, self.total_length - entry_offset)
    }
}

/// The simulator: executes a [`PatrolPlan`] against a [`Scenario`].
pub struct Simulation<'a> {
    scenario: &'a Scenario,
    plan: &'a PatrolPlan,
    config: SimulationConfig,
}

impl<'a> Simulation<'a> {
    /// Creates a simulation with the default configuration (paper energy
    /// model, 80 000 s horizon).
    pub fn new(scenario: &'a Scenario, plan: &'a PatrolPlan) -> Self {
        Simulation {
            scenario,
            plan,
            config: SimulationConfig::default(),
        }
    }

    /// Creates a simulation with an explicit configuration.
    pub fn with_config(
        scenario: &'a Scenario,
        plan: &'a PatrolPlan,
        config: SimulationConfig,
    ) -> Self {
        Simulation {
            scenario,
            plan,
            config,
        }
    }

    /// Runs until the configured horizon.
    pub fn run(&self) -> SimulationOutcome {
        self.run_for(self.config.horizon_s)
    }

    /// Runs until `horizon_s` seconds of simulated time.
    pub fn run_for(&self, horizon_s: f64) -> SimulationOutcome {
        let empty = DisruptionPlan::none();
        EngineCore::new(
            self.scenario,
            self.plan,
            self.config,
            &empty,
            None,
            horizon_s,
        )
        .run()
        .outcome
    }
}

/// What a finished engine run produced (the dynamic wrapper re-exports the
/// extras; static runs only keep `outcome`).
pub(crate) struct EngineRun {
    pub(crate) outcome: SimulationOutcome,
    pub(crate) timeline: Vec<TimelineEntry>,
    pub(crate) replan_times_s: Vec<f64>,
    pub(crate) events_fired: u64,
}

/// The unified event-driven engine behind both [`Simulation`] and
/// [`crate::DynamicSimulation`].
pub(crate) struct EngineCore<'a> {
    scenario: &'a Scenario,
    plan: &'a PatrolPlan,
    config: SimulationConfig,
    disruptions: &'a DisruptionPlan,
    replanner: Option<&'a dyn Replanner>,
    horizon: f64,

    // Mutable run state.
    routes: Vec<MuleRoute>,
    states: Vec<MuleState>,
    buffers: HashMap<NodeId, DataBuffer>,
    last_visit: HashMap<NodeId, f64>,
    /// Activity of target nodes; absent means active. Only dynamic runs
    /// ever insert `false`.
    inactive: HashMap<NodeId, bool>,
    /// Global speed multiplier (1.0 = nominal); the product of all open
    /// speed windows, applied to legs as they are scheduled — never
    /// retroactively to committed legs.
    speed_factor: f64,
    /// Factors of the currently open speed windows (windows may overlap).
    open_speed_windows: Vec<f64>,
    /// Fresh itineraries awaiting adoption at each mule's next arrival.
    pending_switch: Vec<Option<MuleItinerary>>,
    visits: Vec<VisitRecord>,
    timeline: Vec<TimelineEntry>,
    replan_times_s: Vec<f64>,
    last_replan_s: Option<f64>,
}

impl<'a> EngineCore<'a> {
    pub(crate) fn new(
        scenario: &'a Scenario,
        plan: &'a PatrolPlan,
        config: SimulationConfig,
        disruptions: &'a DisruptionPlan,
        replanner: Option<&'a dyn Replanner>,
        horizon_s: f64,
    ) -> Self {
        let field = scenario.field();
        let buffers: HashMap<NodeId, DataBuffer> = field
            .nodes()
            .iter()
            .filter(|n| n.kind == NodeKind::Target)
            .map(|n| (n.id, DataBuffer::new(scenario.data_rate_bps())))
            .collect();
        let last_visit: HashMap<NodeId, f64> = field.nodes().iter().map(|n| (n.id, 0.0)).collect();

        let routes: Vec<MuleRoute> = plan
            .itineraries
            .iter()
            .map(MuleRoute::from_itinerary)
            .collect();
        let states: Vec<MuleState> = plan
            .itineraries
            .iter()
            .map(|it| MuleState {
                index: it.mule_index,
                battery: Battery::full(config.energy.initial_energy_j),
                ledger: ConsumptionLedger::new(),
                payload: MulePayload::new(),
                distance_m: 0.0,
                visits: 0,
                recharges: 0,
                status: if it.cycle.len() < 2 {
                    MuleStatus::Idle
                } else {
                    MuleStatus::Active
                },
                next_waypoint: 0,
                next_arrival_s: 0.0,
                position: it.start_position,
                scheduled: false,
            })
            .collect();

        // Late-arrival targets start out of service.
        let mut inactive = HashMap::new();
        for id in disruptions.late_target_ids() {
            inactive.insert(id, true);
        }

        let mule_count = plan.itineraries.len();
        EngineCore {
            scenario,
            plan,
            config,
            disruptions,
            replanner,
            horizon: horizon_s.max(0.0),
            routes,
            states,
            buffers,
            last_visit,
            inactive,
            speed_factor: 1.0,
            open_speed_windows: Vec::new(),
            pending_switch: (0..mule_count).map(|_| None).collect(),
            visits: Vec::new(),
            timeline: Vec::new(),
            replan_times_s: Vec::new(),
            last_replan_s: None,
        }
    }

    /// Effective fleet speed right now, metres per second.
    fn speed(&self) -> f64 {
        self.config.energy.speed_m_per_s.max(1e-9) * self.speed_factor
    }

    /// Recomputes the effective multiplier as the product of all open
    /// windows — always from scratch, so closing a window restores the
    /// exact pre-window factor with no floating-point drift.
    fn recompute_speed_factor(&mut self) {
        self.speed_factor = self.open_speed_windows.iter().product::<f64>().max(0.01);
    }

    fn is_target_active(&self, id: NodeId) -> bool {
        !self.inactive.get(&id).copied().unwrap_or(false)
    }

    pub(crate) fn run(mut self) -> EngineRun {
        let _span = mule_obs::span("sim.run");
        let mut clock = SimClock::new();
        self.schedule_initial_arrivals(&mut clock);
        self.schedule_disruptions(&mut clock);

        clock.run_until(self.horizon, |clock, event| self.handle(clock, event));
        mule_obs::add("events", clock.fired());

        self.visits.sort_by(|a, b| {
            a.time_s
                .total_cmp(&b.time_s)
                .then(a.mule_index.cmp(&b.mule_index))
        });

        EngineRun {
            outcome: SimulationOutcome {
                planner_name: self.plan.planner_name.clone(),
                horizon_s: self.horizon,
                visits: self.visits,
                mules: self.states.iter().map(MuleState::report).collect(),
            },
            timeline: self.timeline,
            replan_times_s: self.replan_times_s,
            events_fired: clock.fired(),
        }
    }

    /// Schedules the first waypoint arrival of every mule: it travels from
    /// its start position to its entry point on the cycle (the
    /// location-initialisation move), optionally holds until the whole
    /// fleet is in position, then proceeds to the first waypoint at or
    /// after its entry offset.
    fn schedule_initial_arrivals(&mut self, clock: &mut SimClock) {
        let speed = self.speed();
        let deploy_dists: Vec<f64> = self
            .plan
            .itineraries
            .iter()
            .enumerate()
            .map(|(m, it)| {
                if self.routes[m].len() == 0 {
                    0.0
                } else {
                    it.start_position.distance(&it.entry_point())
                }
            })
            .collect();
        let fleet_ready_s = deploy_dists.iter().cloned().fold(0.0, f64::max) / speed;

        for (m, it) in self.plan.itineraries.iter().enumerate() {
            let route = &self.routes[m];
            if route.len() == 0 {
                continue;
            }
            let entry_offset = if route.total_length > 1e-9 {
                it.entry_offset_m.rem_euclid(route.total_length)
            } else {
                0.0
            };
            let deploy_dist = deploy_dists[m];
            let (first_wp, partial_dist) = route.entry_waypoint(entry_offset);

            let travel = deploy_dist + partial_dist.max(0.0);
            let dest = self.routes[m].destination_node(first_wp);
            if !self.consume_movement(m, travel, dest) {
                self.states[m].status = MuleStatus::Depleted { at_s: 0.0 };
                continue; // died during deployment
            }
            let patrol_start_s = if self.config.synchronized_start {
                fleet_ready_s
            } else {
                deploy_dist / speed
            };
            self.states[m].next_waypoint = first_wp;
            self.states[m].next_arrival_s = patrol_start_s + partial_dist.max(0.0) / speed;
            if self.states[m].next_arrival_s <= self.horizon {
                clock.schedule_at(
                    self.states[m].next_arrival_s,
                    EventSubject::Mule(m),
                    EventKind::WaypointArrival,
                );
                self.states[m].scheduled = true;
            }
        }
    }

    /// Compiles the disruption plan onto the timeline. Nothing is
    /// scheduled for a static run (the plan is empty), so the timeline
    /// carries pure waypoint arrivals exactly like the original engine's
    /// arrival heap.
    fn schedule_disruptions(&mut self, clock: &mut SimClock) {
        for d in &self.disruptions.disruptions {
            match *d {
                Disruption::TargetFailure { target, at_s } => {
                    clock.schedule_at(at_s, EventSubject::Target(target), EventKind::TargetFailure);
                }
                Disruption::TargetRecovery { target, at_s } => {
                    clock.schedule_at(
                        at_s,
                        EventSubject::Target(target),
                        EventKind::TargetRecovery,
                    );
                }
                Disruption::TargetArrival { target, at_s } => {
                    clock.schedule_at(at_s, EventSubject::Target(target), EventKind::TargetArrival);
                }
                Disruption::MuleBreakdown { mule, at_s } => {
                    clock.schedule_at(at_s, EventSubject::Mule(mule), EventKind::MuleBreakdown);
                }
                Disruption::SpeedWindow {
                    start_s,
                    end_s,
                    factor,
                } => {
                    clock.schedule_at(
                        start_s,
                        EventSubject::Global,
                        EventKind::SpeedWindowStart { factor },
                    );
                    clock.schedule_at(
                        end_s,
                        EventSubject::Global,
                        EventKind::SpeedWindowEnd { factor },
                    );
                }
            }
        }
    }

    /// The per-kind dispatch counter name attached to the enclosing
    /// `sim.run` span. Counter values are part of the deterministic trace
    /// shape: an event-count drift between two runs of one seed is a
    /// determinism bug, and the trace localises it to a kind.
    fn event_counter(kind: &EventKind) -> &'static str {
        match kind {
            EventKind::TargetFailure => "event.target_failure",
            EventKind::TargetRecovery => "event.target_recovery",
            EventKind::TargetArrival => "event.target_arrival",
            EventKind::MuleBreakdown => "event.mule_breakdown",
            EventKind::SpeedWindowStart { .. } => "event.speed_window_start",
            EventKind::SpeedWindowEnd { .. } => "event.speed_window_end",
            EventKind::Replan => "event.replan",
            EventKind::WaypointArrival => "event.waypoint_arrival",
        }
    }

    fn handle(&mut self, clock: &mut SimClock, event: Event) {
        mule_obs::add(Self::event_counter(&event.kind), 1);
        let now = event.time_s;
        match (event.kind, event.subject) {
            (EventKind::WaypointArrival, EventSubject::Mule(m)) => {
                self.on_arrival(clock, m, now);
            }
            (EventKind::TargetFailure, EventSubject::Target(id)) => {
                self.inactive.insert(id, true);
                self.note(now, format!("target {id} fails"));
                self.request_replan(clock, now);
            }
            (EventKind::TargetRecovery, EventSubject::Target(id))
            | (EventKind::TargetArrival, EventSubject::Target(id)) => {
                self.inactive.insert(id, false);
                // Data "generated" while the target was down never
                // existed: restart its buffer and age baseline at `now`.
                if let Some(buffer) = self.buffers.get_mut(&id) {
                    buffer.restart_at(now);
                }
                self.last_visit.insert(id, now);
                let what = if event.kind == EventKind::TargetArrival {
                    "arrives"
                } else {
                    "recovers"
                };
                self.note(now, format!("target {id} {what}"));
                self.request_replan(clock, now);
            }
            (EventKind::MuleBreakdown, EventSubject::Mule(m))
                if m < self.states.len() && self.states[m].status.survived() =>
            {
                self.states[m].status = MuleStatus::BrokenDown { at_s: now };
                self.states[m].scheduled = false;
                self.note(now, format!("mule {m} breaks down"));
                self.request_replan(clock, now);
            }
            (EventKind::SpeedWindowStart { factor }, _) => {
                self.open_speed_windows.push(factor.max(0.01));
                self.recompute_speed_factor();
                self.note(now, format!("fleet speed ×{:.2}", self.speed_factor));
            }
            (EventKind::SpeedWindowEnd { factor }, _) => {
                // Close one window with this factor; overlapping windows
                // keep the remaining factors in force.
                if let Some(pos) = self
                    .open_speed_windows
                    .iter()
                    .position(|f| f.total_cmp(&factor.max(0.01)).is_eq())
                {
                    self.open_speed_windows.remove(pos);
                }
                self.recompute_speed_factor();
                self.note(now, format!("fleet speed ×{:.2}", self.speed_factor));
            }
            (EventKind::Replan, _) => {
                self.on_replan(clock, now);
            }
            // Mis-targeted events (e.g. a failure addressed to a mule)
            // cannot be scheduled by this crate; ignore defensively.
            _ => {}
        }
    }

    fn note(&mut self, time_s: f64, description: String) {
        self.timeline.push(TimelineEntry {
            time_s,
            description,
        });
    }

    /// Schedules a coalescing replan at `now` (same-instant disruptions
    /// produce one replan, because [`EngineCore::on_replan`] drops
    /// duplicates).
    fn request_replan(&mut self, clock: &mut SimClock, now: f64) {
        if self.replanner.is_some() {
            clock.schedule_at(now, EventSubject::Global, EventKind::Replan);
        }
    }

    fn on_replan(&mut self, clock: &mut SimClock, now: f64) {
        if self.last_replan_s == Some(now) {
            return; // several disruptions at this instant — already done
        }
        let Some(replanner) = self.replanner else {
            return;
        };
        self.last_replan_s = Some(now);
        let _span = mule_obs::span("sim.replan");

        let mut inactive_targets: Vec<NodeId> = self
            .inactive
            .iter()
            .filter(|(_, &down)| down)
            .map(|(&id, _)| id)
            .collect();
        inactive_targets.sort_unstable();

        let mut active_mules = Vec::new();
        let mut positions = Vec::new();
        for (m, state) in self.states.iter().enumerate() {
            if state.status.survived() {
                active_mules.push(m);
                // A mule with a leg in flight will adopt the new plan at
                // its committed destination; plan from there. Unscheduled
                // mules adopt where they stand.
                positions.push(if state.scheduled {
                    self.routes[m].positions[state.next_waypoint]
                } else {
                    state.position
                });
            }
        }

        let ctx = ReplanContext {
            scenario: self.scenario,
            inactive_targets: &inactive_targets,
            active_mules: &active_mules,
            mule_positions: &positions,
            previous: self.plan,
            time_s: now,
        };
        match replanner.replan(&ctx) {
            Ok(new_plan) => {
                self.replan_times_s.push(now);
                self.note(
                    now,
                    format!(
                        "replan ({}): {} mules over {} nodes",
                        replanner.name(),
                        new_plan.mule_count(),
                        new_plan.covered_nodes().len()
                    ),
                );
                for itinerary in new_plan.itineraries {
                    let m = itinerary.mule_index;
                    if m >= self.states.len() || !self.states[m].status.survived() {
                        continue;
                    }
                    if self.states[m].scheduled {
                        self.pending_switch[m] = Some(itinerary);
                    } else {
                        // Idle or parked mule: join the new plan right away.
                        self.adopt_itinerary(clock, m, itinerary, now);
                    }
                }
            }
            Err(e) => {
                // Unplannable world (e.g. every target failed): keep
                // flying the old plan.
                self.note(now, format!("replan failed: {e}"));
            }
        }
    }

    /// Switches mule `m` onto `itinerary` at time `now`: it travels from
    /// its current position to the itinerary's entry point (respecting the
    /// planner's start-point spreading), then patrols. Replan joins are
    /// per-mule immediate — there is no fleet-wide synchronized hold like
    /// the initial deployment, because pausing survivors mid-run would
    /// only add dead time.
    fn adopt_itinerary(
        &mut self,
        clock: &mut SimClock,
        m: usize,
        itinerary: MuleItinerary,
        now: f64,
    ) {
        let route = MuleRoute::from_itinerary(&itinerary);
        if route.len() == 0 {
            self.routes[m] = route;
            self.states[m].status = MuleStatus::Idle;
            return;
        }
        let entry_offset = if route.total_length > 1e-9 {
            itinerary.entry_offset_m.rem_euclid(route.total_length)
        } else {
            0.0
        };
        let (first_wp, partial_dist) = route.entry_waypoint(entry_offset);
        let deploy_dist = self.states[m].position.distance(&itinerary.entry_point());
        let travel = deploy_dist + partial_dist.max(0.0);
        let dest = route.destination_node(first_wp);
        self.routes[m] = route;
        if !self.consume_movement(m, travel, dest) {
            self.states[m].status = MuleStatus::Depleted { at_s: now };
            return;
        }
        if self.states[m].status == MuleStatus::Idle && self.routes[m].len() >= 2 {
            self.states[m].status = MuleStatus::Active;
        }
        let arrival = now + travel / self.speed();
        self.states[m].next_waypoint = first_wp;
        self.states[m].next_arrival_s = arrival;
        if arrival <= self.horizon {
            clock.schedule_at(arrival, EventSubject::Mule(m), EventKind::WaypointArrival);
            self.states[m].scheduled = true;
        } else {
            self.states[m].scheduled = false;
        }
    }

    fn on_arrival(&mut self, clock: &mut SimClock, m: usize, now: f64) {
        // A breakdown (or battery death) between scheduling and arrival
        // cancels the leg.
        if matches!(
            self.states[m].status,
            MuleStatus::Depleted { .. } | MuleStatus::BrokenDown { .. }
        ) {
            return;
        }
        self.states[m].scheduled = false;
        let wp = self.states[m].next_waypoint;
        // `None` marks an intermediate bend of a road leg: nothing to
        // visit, the mule just turns a corner and the next leg is
        // scheduled below.
        let node_opt = self.routes[m].nodes[wp];
        self.states[m].position = self.routes[m].positions[wp];
        let node_kind = node_opt.and_then(|id| self.scenario.field().node(id).map(|n| n.kind));

        // --- Visit processing ------------------------------------------------
        match (node_kind, node_opt) {
            // An inactive target is passed by: nothing to collect, no
            // visit recorded (the catch-all arm below).
            (Some(NodeKind::Target), Some(node_id)) if self.is_target_active(node_id) => {
                let age = now - self.last_visit.get(&node_id).copied().unwrap_or(0.0);
                let bytes = self
                    .buffers
                    .get_mut(&node_id)
                    .map(|b| b.collect(now).0)
                    .unwrap_or(0.0);
                self.states[m].payload.load(node_id, bytes);
                if self.config.energy_enabled {
                    let e = self.config.energy.collection_energy(1);
                    self.states[m].battery.draw(e);
                    self.states[m].ledger.record(EnergyCause::Collection, e);
                }
                self.states[m].visits += 1;
                self.last_visit.insert(node_id, now);
                self.visits.push(VisitRecord {
                    time_s: now,
                    mule_index: m,
                    node: node_id,
                    data_age_s: age.max(0.0),
                    bytes,
                });
            }
            (Some(NodeKind::Sink), Some(node_id)) => {
                let age = now - self.last_visit.get(&node_id).copied().unwrap_or(0.0);
                self.states[m].payload.deliver_all();
                self.states[m].visits += 1;
                self.last_visit.insert(node_id, now);
                self.visits.push(VisitRecord {
                    time_s: now,
                    mule_index: m,
                    node: node_id,
                    data_age_s: age.max(0.0),
                    bytes: 0.0,
                });
            }
            (Some(NodeKind::RechargeStation), Some(node_id)) => {
                if self.config.energy_enabled {
                    self.states[m].battery.recharge_full();
                }
                self.states[m].recharges += 1;
                self.last_visit.insert(node_id, now);
            }
            _ => {}
        }

        // --- Route switch after a replan -------------------------------------
        if let Some(itinerary) = self.pending_switch[m].take() {
            self.adopt_itinerary(clock, m, itinerary, now);
            return;
        }

        // --- Schedule the next leg -------------------------------------------
        let route = &self.routes[m];
        if route.total_length <= 1e-9 && self.config.collection_dwell_s <= 0.0 {
            // Degenerate zero-length cycle: visiting once is all the
            // progress that can ever be made.
            return;
        }
        let next_wp = (wp + 1) % route.len();
        let leg = route.positions[wp].distance(&route.positions[next_wp]);
        let dest = route.destination_node(next_wp);
        if !self.consume_movement(m, leg, dest) {
            self.states[m].status = MuleStatus::Depleted { at_s: now };
            return;
        }
        // Collection dwell applies at real stops only — a bend in the road
        // geometry is not a place where data is collected.
        let dwell = if node_opt.is_some() {
            self.config.collection_dwell_s
        } else {
            0.0
        };
        let arrival = now + dwell + leg / self.speed();
        self.states[m].next_waypoint = next_wp;
        self.states[m].next_arrival_s = arrival;
        if arrival <= self.horizon {
            clock.schedule_at(arrival, EventSubject::Mule(m), EventKind::WaypointArrival);
            self.states[m].scheduled = true;
        }
    }

    /// Charges the movement of `distance_m` metres to mule `m`. Returns
    /// `false` when the battery cannot afford it (the mule is stranded).
    /// `destination` is `None` for legs ending at a road bend rather than
    /// a field node.
    fn consume_movement(&mut self, m: usize, distance_m: f64, destination: Option<NodeId>) -> bool {
        if distance_m <= 0.0 {
            return true;
        }
        let state = &mut self.states[m];
        if !self.config.energy_enabled {
            state.distance_m += distance_m;
            return true;
        }
        let energy = self.config.energy.movement_energy(distance_m);
        if !state.battery.can_afford(energy) {
            // Travel as far as the remaining charge allows, then strand.
            let affordable = self.config.energy.range_on(state.battery.remaining());
            state.distance_m += affordable.min(distance_m);
            state.battery.draw(energy);
            return false;
        }
        state.battery.draw(energy);
        state.distance_m += distance_m;
        // Movement towards (or away from) the recharge station is accounted
        // as recharge-detour energy; everything else is patrol movement.
        let dest_is_station = destination
            .and_then(|id| self.scenario.field().node(id))
            .map(|n| n.kind == NodeKind::RechargeStation)
            .unwrap_or(false);
        let cause = if dest_is_station {
            EnergyCause::RechargeMovement
        } else {
            EnergyCause::PatrolMovement
        };
        state.ledger.record(cause, energy);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mule_energy::EnergyModel;
    use mule_workload::{ScenarioConfig, WeightSpec};
    use patrol_core::{baselines::ChbPlanner, BTctp, Planner, RwTctp};

    fn scenario(seed: u64) -> Scenario {
        ScenarioConfig::paper_default().with_seed(seed).generate()
    }

    #[test]
    fn btctp_run_visits_every_patrolled_node_repeatedly() {
        let s = scenario(3);
        let plan = BTctp::new().plan(&s).unwrap();
        let outcome =
            Simulation::with_config(&s, &plan, SimulationConfig::timing_only()).run_for(40_000.0);
        let per_node = outcome.visit_times_per_node();
        for id in s.patrolled_ids() {
            let times = per_node.get(&id).expect("every node visited");
            assert!(times.len() >= 3, "node {id} visited {} times", times.len());
            // Times strictly increase.
            for w in times.windows(2) {
                assert!(w[1] > w[0] - 1e-9);
            }
        }
        assert!(outcome.all_mules_survived());
        assert!(outcome.total_distance_m() > 0.0);
    }

    #[test]
    fn visit_times_never_exceed_the_horizon() {
        let s = scenario(5);
        let plan = BTctp::new().plan(&s).unwrap();
        let outcome =
            Simulation::with_config(&s, &plan, SimulationConfig::timing_only()).run_for(5_000.0);
        assert!(outcome.visits.iter().all(|v| v.time_s <= 5_000.0));
        assert_eq!(outcome.horizon_s, 5_000.0);
    }

    #[test]
    fn btctp_intervals_are_constant_after_warmup() {
        // The headline B-TCTP property: once all mules are in position,
        // every target is visited every |P|/(n·v) seconds exactly.
        let s = scenario(7);
        let plan = BTctp::new().plan(&s).unwrap();
        let outcome =
            Simulation::with_config(&s, &plan, SimulationConfig::timing_only()).run_for(60_000.0);
        let expected =
            plan.itineraries[0].cycle_length() / (plan.mule_count() as f64 * 2.0/* m/s */);
        for (_, times) in outcome.visit_times_per_node() {
            // Skip the warm-up visits (mules converging onto their start
            // points), then check steady-state intervals.
            if times.len() < 5 {
                continue;
            }
            for w in times[2..].windows(2) {
                let interval = w[1] - w[0];
                assert!(
                    (interval - expected).abs() < 1.0,
                    "steady-state interval {interval} vs expected {expected}"
                );
            }
        }
    }

    #[test]
    fn chb_without_spreading_yields_unequal_intervals() {
        let s = scenario(11);
        let plan = ChbPlanner::new().plan(&s).unwrap();
        let outcome =
            Simulation::with_config(&s, &plan, SimulationConfig::timing_only()).run_for(60_000.0);
        // All mules bunched: consecutive visits to a target alternate between
        // "very soon" (the bunch passes) and "a full lap later".
        let mut spreads = Vec::new();
        for (_, times) in outcome.visit_times_per_node() {
            if times.len() >= 6 {
                let intervals: Vec<f64> = times[1..].windows(2).map(|w| w[1] - w[0]).collect();
                let max = intervals.iter().cloned().fold(f64::MIN, f64::max);
                let min = intervals.iter().cloned().fold(f64::MAX, f64::min);
                spreads.push(max - min);
            }
        }
        assert!(
            spreads.iter().any(|&x| x > 100.0),
            "CHB should show uneven intervals, spreads {spreads:?}"
        );
    }

    #[test]
    fn energy_accounting_balances_with_distance() {
        let s = scenario(13);
        let plan = BTctp::new().plan(&s).unwrap();
        let outcome = Simulation::new(&s, &plan).run_for(10_000.0);
        for m in &outcome.mules {
            let movement = m.ledger.get(EnergyCause::PatrolMovement)
                + m.ledger.get(EnergyCause::RechargeMovement);
            let expected = m.distance_m * EnergyModel::paper_default().move_cost_j_per_m;
            assert!(
                (movement - expected).abs() < 1e-6,
                "movement energy {movement} vs distance-derived {expected}"
            );
        }
    }

    #[test]
    fn mules_strand_when_energy_runs_out_without_recharge() {
        let s = scenario(17);
        let plan = BTctp::new().plan(&s).unwrap();
        let tiny = EnergyModel {
            initial_energy_j: 2_000.0, // a couple hundred metres of range
            ..EnergyModel::paper_default()
        };
        let outcome =
            Simulation::with_config(&s, &plan, SimulationConfig::default().with_energy(tiny))
                .run_for(50_000.0);
        assert!(
            outcome.mules.iter().any(|m| !m.status.survived()),
            "with a tiny battery and no recharge station some mule must die"
        );
    }

    #[test]
    fn rwtctp_keeps_mules_alive_via_recharging() {
        let s = ScenarioConfig::paper_default()
            .with_targets(10)
            .with_weights(WeightSpec::UniformVips {
                count: 2,
                weight: 2,
            })
            .with_recharge_station(true)
            .with_seed(19)
            .generate();
        let planner = RwTctp::default();
        let plan = planner.plan(&s).unwrap();
        let outcome = Simulation::new(&s, &plan).run_for(100_000.0);
        assert!(outcome.all_mules_survived(), "RW-TCTP mules must not die");
        assert!(
            outcome.mules.iter().map(|m| m.recharges).sum::<usize>() > 0,
            "mules should have recharged at least once over a long horizon"
        );
    }

    #[test]
    fn sink_deliveries_accumulate_bytes() {
        let s = scenario(23);
        let plan = BTctp::new().plan(&s).unwrap();
        let outcome =
            Simulation::with_config(&s, &plan, SimulationConfig::timing_only()).run_for(40_000.0);
        assert!(outcome.total_delivered_bytes() > 0.0);
    }

    #[test]
    fn zero_horizon_produces_no_visits() {
        let s = scenario(29);
        let plan = BTctp::new().plan(&s).unwrap();
        let outcome =
            Simulation::with_config(&s, &plan, SimulationConfig::timing_only()).run_for(0.0);
        // Only mules whose deployment distance is exactly zero could visit
        // at t = 0; with the sink at the field centre that never happens for
        // the paper layout.
        assert!(outcome.total_visits() <= s.patrolled_ids().len());
        assert_eq!(outcome.horizon_s, 0.0);
    }

    #[test]
    fn idle_itineraries_are_reported_as_idle() {
        let s = ScenarioConfig::paper_default()
            .with_targets(2)
            .with_mules(5)
            .with_seed(8)
            .generate();
        let plan = patrol_core::baselines::SweepPlanner::new()
            .plan(&s)
            .unwrap();
        let outcome =
            Simulation::with_config(&s, &plan, SimulationConfig::timing_only()).run_for(10_000.0);
        assert!(outcome
            .mules
            .iter()
            .any(|m| matches!(m.status, MuleStatus::Idle)));
    }

    #[test]
    fn road_runs_travel_real_geometry_and_visit_only_nodes() {
        let cfg = ScenarioConfig::paper_default().with_seed(3).with_metric(
            mule_workload::MetricSpec::Road(mule_road::RoadNetKind::Grid),
        );
        let s = cfg.generate();
        let plan = BTctp::new().plan(&s).unwrap();
        assert!(
            plan.itineraries.iter().any(|it| !it.leg_paths.is_empty()),
            "road plans carry leg geometry"
        );
        let outcome =
            Simulation::with_config(&s, &plan, SimulationConfig::timing_only()).run_for(40_000.0);
        // Visits land on real patrolled nodes only, never on bends.
        let ids = s.patrolled_ids();
        assert!(outcome.visits.iter().all(|v| ids.contains(&v.node)));
        assert!(outcome.total_visits() > 0);

        // The same targets patrolled by road cover at least as much
        // distance per visit round as the Euclidean chord tour would: the
        // mule walks the expanded polyline, whose length the plan reports.
        let chord: f64 = plan.itineraries[0]
            .cycle
            .windows(2)
            .map(|w| w[0].position.distance(&w[1].position))
            .sum::<f64>()
            + plan.itineraries[0]
                .cycle
                .last()
                .unwrap()
                .position
                .distance(&plan.itineraries[0].cycle[0].position);
        assert!(plan.itineraries[0].cycle_length() >= chord - 1e-9);

        // Deterministic end to end.
        let again =
            Simulation::with_config(&s, &plan, SimulationConfig::timing_only()).run_for(40_000.0);
        assert_eq!(outcome, again);
    }

    #[test]
    fn road_recharge_detours_are_attributed_as_recharge_energy() {
        // Every sub-leg of a road approach to the recharge station must be
        // booked as RechargeMovement — the station is the *destination* of
        // the whole bend run, not just of the final hop.
        let s = ScenarioConfig::paper_default()
            .with_targets(10)
            .with_weights(WeightSpec::UniformVips {
                count: 2,
                weight: 2,
            })
            .with_recharge_station(true)
            .with_seed(19)
            .with_metric(mule_workload::MetricSpec::Road(
                mule_road::RoadNetKind::Grid,
            ))
            .generate();
        let planner = RwTctp::default();
        let plan = planner.plan(&s).unwrap();
        let outcome = Simulation::new(&s, &plan).run_for(100_000.0);
        // Energy still balances with distance under road geometry…
        for m in &outcome.mules {
            let movement = m.ledger.get(EnergyCause::PatrolMovement)
                + m.ledger.get(EnergyCause::RechargeMovement);
            let expected = m.distance_m * EnergyModel::paper_default().move_cost_j_per_m;
            assert!((movement - expected).abs() < 1e-6);
        }
        // …and mules that recharged booked real detour energy: at least
        // the full (multi-bend) approach leg into the station, which on
        // this network is far more than one grid block.
        let station = s.field().recharge_station().unwrap().id;
        let detour: f64 = outcome
            .mules
            .iter()
            .map(|m| m.ledger.get(EnergyCause::RechargeMovement))
            .sum();
        let recharges: usize = outcome.mules.iter().map(|m| m.recharges).sum();
        assert!(recharges > 0, "RW-TCTP must recharge over a long horizon");
        let approach_leg_m = plan.itineraries[0]
            .cycle
            .iter()
            .enumerate()
            .filter(|(_, w)| w.node == station)
            .map(|(i, w)| {
                let n = plan.itineraries[0].cycle.len();
                let prev = &plan.itineraries[0].cycle[(i + n - 1) % n];
                let mut leg = prev.position.distance(&w.position);
                if let Some(path) = plan.itineraries[0].leg_paths.get((i + n - 1) % n) {
                    let mut points = vec![prev.position];
                    points.extend(path.iter().copied());
                    points.push(w.position);
                    leg = points.windows(2).map(|p| p[0].distance(&p[1])).sum();
                }
                leg
            })
            .fold(0.0, f64::max);
        let per_metre = EnergyModel::paper_default().move_cost_j_per_m;
        assert!(
            detour >= approach_leg_m * per_metre * recharges as f64 * 0.99,
            "detour energy {detour} J must cover {recharges} full road approaches of {approach_leg_m} m"
        );
    }

    #[test]
    fn road_intervals_stay_constant_in_steady_state() {
        // B-TCTP's equal-interval property must survive the road metric:
        // mules spread by equal fractions of the *road* cycle and move at
        // constant speed along it.
        let cfg = ScenarioConfig::paper_default().with_seed(9).with_metric(
            mule_workload::MetricSpec::Road(mule_road::RoadNetKind::Grid),
        );
        let s = cfg.generate();
        let plan = BTctp::new().plan(&s).unwrap();
        let outcome =
            Simulation::with_config(&s, &plan, SimulationConfig::timing_only()).run_for(80_000.0);
        let expected = plan.itineraries[0].cycle_length() / (plan.mule_count() as f64 * 2.0);
        let mut checked = 0;
        for (_, times) in outcome.visit_times_per_node() {
            if times.len() < 6 {
                continue;
            }
            for w in times[3..].windows(2) {
                let interval = w[1] - w[0];
                assert!(
                    (interval - expected).abs() < 2.0,
                    "steady-state road interval {interval} vs expected {expected}"
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "some steady-state intervals were checked");
    }

    #[test]
    fn simulation_is_deterministic() {
        let s = scenario(31);
        let plan = BTctp::new().plan(&s).unwrap();
        let a = Simulation::new(&s, &plan).run_for(20_000.0);
        let b = Simulation::new(&s, &plan).run_for(20_000.0);
        assert_eq!(a, b);
    }
}
