//! Trace export: CSV serialisation of the visit log and the per-mule
//! reports, for offline analysis and plotting outside the workspace.

use crate::mule::MuleStatus;
use crate::outcome::SimulationOutcome;
use mule_energy::EnergyCause;

/// Serialises the visit log as CSV with the columns
/// `time_s,mule,node,data_age_s,bytes`.
pub fn visits_to_csv(outcome: &SimulationOutcome) -> String {
    let mut out = String::from("time_s,mule,node,data_age_s,bytes\n");
    for v in &outcome.visits {
        out.push_str(&format!(
            "{:.3},{},{},{:.3},{:.1}\n",
            v.time_s,
            v.mule_index,
            v.node.index(),
            v.data_age_s,
            v.bytes
        ));
    }
    out
}

/// Serialises the per-mule reports as CSV with the columns
/// `mule,status,distance_m,visits,recharges,remaining_j,patrol_j,recharge_j,collection_j,delivered_bytes`.
pub fn mules_to_csv(outcome: &SimulationOutcome) -> String {
    let mut out = String::from(
        "mule,status,distance_m,visits,recharges,remaining_j,patrol_j,recharge_j,collection_j,delivered_bytes\n",
    );
    for m in &outcome.mules {
        let status = match m.status {
            MuleStatus::Active => "active".to_string(),
            MuleStatus::Idle => "idle".to_string(),
            MuleStatus::Depleted { at_s } => format!("depleted@{at_s:.1}"),
            MuleStatus::BrokenDown { at_s } => format!("broken@{at_s:.1}"),
        };
        out.push_str(&format!(
            "{},{},{:.1},{},{},{:.1},{:.1},{:.1},{:.3},{:.1}\n",
            m.mule_index,
            status,
            m.distance_m,
            m.visits,
            m.recharges,
            m.remaining_energy_j,
            m.ledger.get(EnergyCause::PatrolMovement),
            m.ledger.get(EnergyCause::RechargeMovement),
            m.ledger.get(EnergyCause::Collection),
            m.delivered_bytes
        ));
    }
    out
}

/// Writes both CSV files (`<prefix>_visits.csv`, `<prefix>_mules.csv`) to
/// disk and returns the two paths.
pub fn write_csv_files(
    outcome: &SimulationOutcome,
    prefix: &std::path::Path,
) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    let visits_path = prefix.with_file_name(format!(
        "{}_visits.csv",
        prefix
            .file_name()
            .and_then(|s| s.to_str())
            .unwrap_or("trace")
    ));
    let mules_path = prefix.with_file_name(format!(
        "{}_mules.csv",
        prefix
            .file_name()
            .and_then(|s| s.to_str())
            .unwrap_or("trace")
    ));
    std::fs::write(&visits_path, visits_to_csv(outcome))?;
    std::fs::write(&mules_path, mules_to_csv(outcome))?;
    Ok((visits_path, mules_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimulationConfig;
    use crate::engine::Simulation;
    use mule_workload::ScenarioConfig;
    use patrol_core::{BTctp, Planner};

    fn outcome() -> SimulationOutcome {
        let scenario = ScenarioConfig::paper_default()
            .with_targets(6)
            .with_seed(2)
            .generate();
        let plan = BTctp::new().plan(&scenario).unwrap();
        Simulation::with_config(&scenario, &plan, SimulationConfig::timing_only()).run_for(10_000.0)
    }

    #[test]
    fn visits_csv_has_one_line_per_visit_plus_header() {
        let o = outcome();
        let csv = visits_to_csv(&o);
        assert_eq!(csv.lines().count(), o.visits.len() + 1);
        assert!(csv.starts_with("time_s,mule,node,"));
        // Every data row has exactly five columns.
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), 5, "row: {line}");
        }
    }

    #[test]
    fn mules_csv_lists_every_mule_with_status() {
        let o = outcome();
        let csv = mules_to_csv(&o);
        assert_eq!(csv.lines().count(), o.mules.len() + 1);
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), 10, "row: {line}");
            assert!(line.contains("active") || line.contains("idle") || line.contains("depleted"));
        }
    }

    #[test]
    fn csv_files_round_trip_to_disk() {
        let o = outcome();
        let dir = std::env::temp_dir().join("mule_sim_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("run1");
        let (visits, mules) = write_csv_files(&o, &prefix).unwrap();
        assert!(visits.to_string_lossy().ends_with("run1_visits.csv"));
        assert!(mules.to_string_lossy().ends_with("run1_mules.csv"));
        let read_back = std::fs::read_to_string(&visits).unwrap();
        assert_eq!(read_back, visits_to_csv(&o));
        std::fs::remove_dir_all(&dir).ok();
    }
}
