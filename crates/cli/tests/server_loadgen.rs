//! The tracked server load benchmark, end to end: `patrolctl loadgen`
//! drives ≥ 1000 requests over ≥ 4 concurrent connections against a live
//! server, writes `BENCH_server.json`, and the regression gates fire
//! correctly. (The byte-identity contract between cached, cold and
//! offline plans is pinned in `mule-serve`'s integration tests and in
//! `plan_prints_the_service_response_document`.)

use mule_serve::json::{parse, JsonValue};
use mule_serve::ServerConfig;
use patrol_cli::args::LoadgenOptions;
use patrol_cli::{run_command, CliCommand};
use std::time::Duration;

fn start_server() -> mule_serve::ServerHandle {
    mule_serve::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        cache_capacity: 64,
        queue_depth: 64,
        idle_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    })
    .expect("server start")
}

#[test]
fn loadgen_drives_a_thousand_requests_and_writes_the_benchmark() {
    let server = start_server();
    let dir = std::env::temp_dir().join("patrolctl_loadgen_test_out");
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("BENCH_server.json").to_string_lossy().into_owned();

    let options = LoadgenOptions {
        addr: server.addr().to_string(),
        requests: 1000,
        connections: 4,
        spec_pool: 4,
        targets: 8,
        mules: 3,
        seed: 1,
        json_path: Some(json_path.clone()),
        // Generous gates: the run must pass them on any machine; the
        // failing-gate paths are tested separately below.
        max_p99_ms: Some(60_000.0),
        min_rps: Some(1.0),
        warmup: 10,
        slo: Some(mule_obs::SloSpec {
            p99_ms: Some(60_000.0),
            availability_pct: Some(99.0),
        }),
        ..LoadgenOptions::default()
    };
    let out = run_command(&CliCommand::Loadgen(options)).expect("loadgen run");

    // Human-readable summary covers the headline numbers.
    for needle in ["1000 requests", "4 connections", "p99", "hit rate"] {
        assert!(
            out.text.contains(needle),
            "missing `{needle}`:\n{}",
            out.text
        );
    }
    assert_eq!(out.files_written, vec![json_path.clone()]);

    // The tracked artefact parses and carries throughput, percentiles
    // and cache hit rate.
    let json = std::fs::read_to_string(&json_path).unwrap();
    let doc = parse(&json).expect("BENCH_server.json parses");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("bench-server/v2")
    );
    assert_eq!(
        doc.get("requests").and_then(JsonValue::as_usize),
        Some(1000)
    );
    assert_eq!(
        doc.get("connections").and_then(JsonValue::as_usize),
        Some(4)
    );
    assert_eq!(doc.get("ok").and_then(JsonValue::as_usize), Some(1000));
    assert_eq!(doc.get("errors").and_then(JsonValue::as_usize), Some(0));
    assert!(
        doc.get("throughput_rps")
            .and_then(JsonValue::as_f64)
            .unwrap()
            > 0.0
    );
    let latency = doc.get("latency_ms").unwrap();
    for key in ["mean", "p50", "p95", "p99", "max"] {
        let value = latency.get(key).and_then(JsonValue::as_f64).unwrap();
        assert!(value >= 0.0, "{key} = {value}");
    }
    let p50 = latency.get("p50").and_then(JsonValue::as_f64).unwrap();
    let p99 = latency.get("p99").and_then(JsonValue::as_f64).unwrap();
    assert!(p50 <= p99, "percentiles ordered: p50 {p50} ≤ p99 {p99}");

    // 1000 requests rotating over 4 specs: exactly 4 cold computes, and
    // every coalesced request counts as served-from-cache.
    let cache = doc.get("cache").unwrap();
    let hits = cache.get("hits").and_then(JsonValue::as_usize).unwrap();
    let misses = cache.get("misses").and_then(JsonValue::as_usize).unwrap();
    let coalesced = cache
        .get("coalesced")
        .and_then(JsonValue::as_usize)
        .unwrap();
    assert_eq!(hits + misses + coalesced, 1000);
    assert_eq!(misses, 4, "one cold compute per distinct spec");
    let hit_rate = cache.get("hit_rate").and_then(JsonValue::as_f64).unwrap();
    assert!(
        (hit_rate - 0.996).abs() < 1e-9,
        "hit rate {hit_rate} should be 996/1000"
    );

    // Warm-up latencies were discarded but the requests still counted,
    // and the SLO verdict block grades the generous objectives as met.
    assert_eq!(
        doc.get("warmup_discarded").and_then(JsonValue::as_usize),
        Some(10)
    );
    let slo = doc.get("slo").expect("slo block present");
    assert_eq!(slo.get("pass"), Some(&JsonValue::Bool(true)));
    assert!(out.text.contains("slo verdict: PASS"), "{}", out.text);

    // The server observed the same cache traffic.
    let metrics = parse(&server.metrics_json()).unwrap();
    let server_cache = metrics.get("cache").unwrap();
    assert_eq!(
        server_cache.get("misses").and_then(JsonValue::as_usize),
        Some(4)
    );

    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}

#[test]
fn loadgen_gates_fail_on_impossible_bounds() {
    let server = start_server();
    let base = LoadgenOptions {
        addr: server.addr().to_string(),
        requests: 40,
        connections: 4,
        targets: 8,
        mules: 3,
        ..LoadgenOptions::default()
    };

    // An impossible latency bound fails with a Check error …
    let opts = LoadgenOptions {
        max_p99_ms: Some(0.000_001),
        ..base.clone()
    };
    let err = run_command(&CliCommand::Loadgen(opts)).unwrap_err();
    assert!(err.to_string().contains("--max-p99"), "{err}");

    // … and so does an impossible throughput bound.
    let opts = LoadgenOptions {
        min_rps: Some(1e12),
        ..base
    };
    let err = run_command(&CliCommand::Loadgen(opts)).unwrap_err();
    assert!(err.to_string().contains("--min-rps"), "{err}");
    server.shutdown();
}
