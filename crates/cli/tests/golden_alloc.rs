//! Pins the *allocation counts* attributed to the span tree of a
//! paper-sized `patrolctl plan` — the memory half of the determinism
//! contract (docs/DETERMINISM.md, "Observability"): allocation **counts**
//! per span are as reproducible as the span shape itself, while byte
//! figures, peaks, and RSS are environment-dependent and never pinned.
//!
//! This lives in its own integration-test binary so arming the counting
//! allocator cannot interact with the disarmed golden-shape tests in
//! `golden_trace.rs` (integration tests are separate processes).

use patrol_cli::args::parse_args;
use patrol_cli::commands::run_command;

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

/// Runs `cmdline` under a captured trace with the counting allocator
/// armed, returning the alloc-annotated shape.
fn armed_alloc_shape(cmdline: &str) -> String {
    mule_obs::alloc::arm();
    let (result, trace) = mule_obs::capture(|| run_command(&parse_args(&argv(cmdline)).unwrap()));
    mule_obs::alloc::disarm();
    result.unwrap();
    trace.alloc_shape()
}

const PLAN: &str = "plan --targets 12 --mules 3 --seed 7";

#[test]
fn per_span_allocation_counts_are_identical_run_to_run() {
    // One warmup run lets lazily-initialised one-time allocations
    // (runtime statics, thread-local buffers) land outside the compared
    // window; the contract covers steady-state runs.
    let _ = armed_alloc_shape(PLAN);
    let a = armed_alloc_shape(PLAN);
    let b = armed_alloc_shape(PLAN);
    assert_eq!(
        a, b,
        "per-span allocation counts of `patrolctl {PLAN}` drifted between runs"
    );
}

#[test]
fn alloc_shape_attributes_counts_without_pinning_bytes() {
    let _ = armed_alloc_shape(PLAN);
    let shape = armed_alloc_shape(PLAN);
    // Every line carries a count annotation; byte figures never appear.
    assert!(shape.contains("planner.B-TCTP"), "{shape}");
    assert!(shape.contains("allocs="), "{shape}");
    assert!(!shape.contains("bytes"), "bytes are never pinned: {shape}");
    // The plan pipeline allocates on its root span.
    let root = shape.lines().next().unwrap();
    assert!(root.contains("allocs="), "root span attributed: {root}");
}
