//! Pins the *shape* of the span tree produced by a paper-sized
//! `patrolctl plan` — names, nesting, open order, and counters, but
//! never durations (docs/DETERMINISM.md, "Observability").
//!
//! The shape is part of the determinism contract: two runs of the same
//! scenario on any machine must produce the same tree. When
//! instrumentation is intentionally added or moved, re-pin the string
//! below with the diff in hand.

use patrol_cli::args::parse_args;
use patrol_cli::commands::run_command;

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

fn traced(cmdline: &str) -> mule_obs::Trace {
    let (result, trace) = mule_obs::capture(|| run_command(&parse_args(&argv(cmdline)).unwrap()));
    result.unwrap();
    trace
}

#[test]
fn paper_size_plan_span_tree_shape_is_pinned() {
    let trace = traced("plan --targets 12 --mules 3 --seed 7");
    let shape = trace.shape();
    let expected = "planner.B-TCTP\n\
                    \x20 chb.exact n=13\n\
                    \x20   chb.hull_insertion\n\
                    \x20   chb.two_opt moves=0\n\
                    \x20   chb.or_opt moves=0\n\
                    \x20   chb.two_opt moves=0\n";
    assert_eq!(
        shape, expected,
        "span tree shape of `patrolctl plan --targets 12 --mules 3 --seed 7` drifted"
    );
}

#[test]
fn span_tree_shape_is_identical_across_runs() {
    let a = traced("plan --targets 12 --mules 3 --seed 7").shape();
    let b = traced("plan --targets 12 --mules 3 --seed 7").shape();
    assert_eq!(a, b);
}

#[test]
fn trace_out_writes_valid_chrome_trace_json() {
    let dir = std::env::temp_dir().join("patrolctl_golden_trace");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("plan_trace.json");
    let cmdline = format!(
        "plan --targets 12 --mules 3 --seed 7 --trace-out {}",
        path.display()
    );
    let out = run_command(&parse_args(&argv(&cmdline)).unwrap()).unwrap();
    assert!(out
        .files_written
        .contains(&path.to_string_lossy().into_owned()));
    let body = std::fs::read_to_string(&path).unwrap();
    let doc = mule_serve::json::parse(&body).expect("trace file is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "at least one event");
    let mut complete = 0;
    for event in events {
        let phase = event.get("ph").and_then(|v| v.as_str()).expect("ph field");
        if phase != "X" {
            continue; // metadata events carry no timing
        }
        complete += 1;
        for key in ["name", "ts", "dur", "pid", "tid"] {
            assert!(
                event.get(key).is_some(),
                "complete event missing `{key}`: {body}"
            );
        }
    }
    assert!(complete >= 2, "planner and CHB spans recorded");
    std::fs::remove_dir_all(&dir).ok();
}
