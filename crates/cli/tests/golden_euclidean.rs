//! Pins the default (Euclidean) outputs byte-for-byte against the
//! pre-road-metric state.
//!
//! The road-metric subsystem threads a `TravelMetric` through every layer
//! of the stack; the contract (docs/DETERMINISM.md, "Road metrics") is
//! that scenarios which do not opt in are **bit-for-bit unchanged** —
//! same plans, same service responses, same sweep statistics. These
//! FNV-1a-64 hashes were captured from the tree immediately *before* the
//! road subsystem landed; they must never change as a side effect of
//! metric work. (An intentional, reviewed output change elsewhere in the
//! stack may re-pin them — with the diff in hand, not by reflex.)

use patrol_cli::args::parse_args;
use patrol_cli::commands::run_command;

/// FNV-1a 64-bit — the same stable hash the spec fingerprint uses.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

fn run(cmdline: &str) -> patrol_cli::commands::CommandOutput {
    run_command(&parse_args(&argv(cmdline)).unwrap()).unwrap()
}

#[test]
fn default_plan_response_is_byte_identical_to_pre_road_output() {
    let out = run("plan");
    assert_eq!(
        fnv1a(out.text.as_bytes()),
        0xce63_f754_91df_2162,
        "`patrolctl plan` (default spec) drifted from the pre-road bytes"
    );
}

#[test]
fn pinned_plan_response_is_byte_identical_to_pre_road_output() {
    let out = run("plan --targets 12 --mules 3 --seed 7");
    assert_eq!(
        fnv1a(out.text.as_bytes()),
        0xcf67_9c09_7f94_9e4b,
        "`patrolctl plan --targets 12 --mules 3 --seed 7` drifted from the pre-road bytes"
    );
}

#[test]
fn pinned_sweep_csv_is_byte_identical_to_pre_road_output() {
    let dir = std::env::temp_dir().join("patrolctl_golden_euclidean");
    std::fs::create_dir_all(&dir).unwrap();
    let csv_path = dir.join("sweep.csv");
    let cmdline = format!(
        "sweep --targets 8 --seeds 1,2 --mule-counts 2,3 --replicas 2 --horizon 5000 --csv {}",
        csv_path.display()
    );
    let _ = run(&cmdline);
    let csv = std::fs::read(&csv_path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(
        fnv1a(&csv),
        0xa52f_bd00_bd21_83b0,
        "the pinned sweep CSV drifted from the pre-road bytes"
    );
}
