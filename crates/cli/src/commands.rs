//! Implementations of the `patrolctl` subcommands.
//!
//! Every command returns a [`CommandOutput`] (text plus optional files
//! written) instead of printing directly, so the logic is unit-testable.

use crate::args::{
    BenchRoutesOptions, BenchScaleOptions, BenchToursOptions, ChaosOptions, CliCommand, CliError,
    CliOptions, DisruptionPreset, DynamicsOptions, LoadgenOptions, PlannerChoice, ServeOptions,
    SweepOptions, USAGE,
};
use mule_bench::routebench::{run_route_bench, RouteBenchParams};
use mule_bench::scalebench::{run_scale_bench, ScaleBenchParams};
use mule_bench::tourbench::{run_tour_bench, tracing_overhead_ratio, TourBenchParams};
use mule_graph::ChbConfig;
use mule_metrics::{
    DcdtSeries, EnergyEfficiencyReport, FairnessReport, IntervalReport, PhaseDelayReport,
    SweepReport, TextTable,
};
use mule_sim::{DynamicSimulation, Simulation, SimulationConfig, SimulationOutcome};
use mule_viz::{plan_to_svg, render_plan, render_scenario, SvgStyle};
use mule_workload::{
    DisruptionConfig, DisruptionPlan, Scenario, ScenarioConfig, ScenarioSpec, SweepSpec,
};
use patrol_core::baselines::{ChbPlanner, RandomPlanner, SweepPlanner};
use patrol_core::{
    BTctp, BreakEdgePolicy, PatrolPlan, PlanError, Planner, ReplanWithPlanner, RwTctp, WTctp,
};

/// Result of running a command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandOutput {
    /// Text to print to stdout.
    pub text: String,
    /// Paths of any files the command wrote.
    pub files_written: Vec<String>,
}

impl CommandOutput {
    fn text_only(text: String) -> Self {
        CommandOutput {
            text,
            files_written: Vec::new(),
        }
    }
}

/// Errors a command can produce.
#[derive(Debug)]
pub enum CommandError {
    /// Argument-level problem.
    Cli(CliError),
    /// The selected planner rejected the scenario.
    Plan(PlanError),
    /// A file could not be written.
    Io(std::io::Error),
    /// A quality/regression gate failed (e.g. `bench-tours --max-ratio`).
    Check(String),
}

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommandError::Cli(e) => write!(f, "{e}"),
            CommandError::Plan(e) => write!(f, "planning failed: {e}"),
            CommandError::Io(e) => write!(f, "i/o error: {e}"),
            CommandError::Check(msg) => write!(f, "check failed: {msg}"),
        }
    }
}

impl std::error::Error for CommandError {}

impl From<PlanError> for CommandError {
    fn from(e: PlanError) -> Self {
        CommandError::Plan(e)
    }
}

impl From<std::io::Error> for CommandError {
    fn from(e: std::io::Error) -> Self {
        CommandError::Io(e)
    }
}

/// The service-layer scenario spec the CLI options describe. This is the
/// single source of truth for flag → scenario mapping: both the offline
/// commands (via [`build_scenario_config`]) and the serving path
/// (`patrolctl plan`, `loadgen`, the server) build their scenarios from a
/// [`ScenarioSpec`], so the two front ends cannot drift.
pub fn spec_from_options(options: &CliOptions) -> ScenarioSpec {
    ScenarioSpec {
        targets: options.targets,
        mules: options.mules,
        seed: options.seed,
        vips: options.vips,
        vip_weight: options.vip_weight,
        recharge: options.recharge,
        planner: options.planner.canonical_name().to_string(),
        horizon_s: options.horizon_s,
        metric: options.metric,
    }
}

/// Builds the scenario configuration described by the CLI options.
pub fn build_scenario_config(options: &CliOptions) -> ScenarioConfig {
    spec_from_options(options).scenario_config()
}

/// Builds the scenario described by the CLI options.
pub fn build_scenario(options: &CliOptions) -> Scenario {
    build_scenario_config(options).generate()
}

/// The simulation configuration the CLI options imply: full energy
/// accounting only when a recharge station is present, pure timing
/// otherwise.
fn sim_config_for(options: &CliOptions) -> SimulationConfig {
    if options.recharge {
        SimulationConfig::default()
    } else {
        SimulationConfig::timing_only()
    }
}

/// The circuit-construction configuration the CLI options imply: default
/// pass budgets with the selected tour-search mode.
pub fn chb_config_for(options: &CliOptions) -> ChbConfig {
    ChbConfig::default().with_search(options.search.to_mode(options.knn))
}

/// Instantiates the planner selected on the command line with the default
/// circuit construction.
pub fn build_planner(choice: PlannerChoice) -> Box<dyn Planner> {
    build_planner_with(choice, ChbConfig::default())
}

/// Instantiates the planner selected on the command line, threading the
/// circuit-construction configuration (pass budgets + search mode) through
/// to every planner that builds a Hamiltonian circuit. The Random baseline
/// plans no circuit and ignores it.
pub fn build_planner_with(choice: PlannerChoice, chb: ChbConfig) -> Box<dyn Planner> {
    match choice {
        PlannerChoice::BTctp => Box::new(BTctp::new().with_chb(chb)),
        PlannerChoice::WTctpShortest => {
            Box::new(WTctp::new(BreakEdgePolicy::ShortestLength).with_chb(chb))
        }
        PlannerChoice::WTctpBalancing => {
            Box::new(WTctp::new(BreakEdgePolicy::BalancingLength).with_chb(chb))
        }
        PlannerChoice::RwTctp => Box::new(RwTctp::default().with_chb(chb)),
        PlannerChoice::Chb => Box::new(ChbPlanner::new().with_chb(chb)),
        PlannerChoice::Sweep => Box::new(SweepPlanner::new().with_chb(chb)),
        PlannerChoice::Random => Box::new(RandomPlanner::new()),
    }
}

fn simulate(scenario: &Scenario, plan: &PatrolPlan, options: &CliOptions) -> SimulationOutcome {
    Simulation::with_config(scenario, plan, sim_config_for(options)).run_for(options.horizon_s)
}

fn metrics_text(plan: &PatrolPlan, outcome: &SimulationOutcome) -> String {
    let intervals = IntervalReport::from_outcome(outcome);
    let dcdt = DcdtSeries::from_outcome(outcome);
    let energy = EnergyEfficiencyReport::from_outcome(outcome);
    let fairness = FairnessReport::from_outcome(outcome);

    let mut out = String::new();
    out.push_str(&format!(
        "planner: {}\ncycle length: {:.0} m (longest itinerary)\n",
        plan.planner_name,
        plan.max_cycle_length()
    ));
    out.push_str(&format!(
        "visits: {}  distance: {:.1} km  delivered: {:.1} kB\n",
        outcome.total_visits(),
        outcome.total_distance_m() / 1000.0,
        outcome.total_delivered_bytes() / 1000.0
    ));
    out.push_str(&format!(
        "visiting interval: max {:.1} s  mean {:.1} s  avg per-target SD {:.2} s\n",
        intervals.max_interval(),
        intervals.mean_interval(),
        intervals.average_sd()
    ));
    out.push_str(&format!(
        "DCDT (post warm-up): mean {:.1} s  max {:.1} s\n",
        dcdt.average_dcdt(2),
        dcdt.max_dcdt(2)
    ));
    out.push_str(&format!(
        "fairness: coverage {:.3}  fleet balance {:.3}\n",
        fairness.coverage_fairness, fairness.fleet_balance
    ));
    out.push_str(&format!(
        "energy: total {:.0} J  useful fraction {:.2}  recharges {}  fleet survived: {}\n",
        energy.total_energy_j,
        energy.useful_fraction(),
        energy.recharges,
        energy.fleet_survived()
    ));
    out
}

fn run_render(options: &CliOptions) -> Result<CommandOutput, CommandError> {
    let scenario = build_scenario(options);
    let planner = build_planner_with(options.planner, chb_config_for(options));
    let width = options.canvas_width.clamp(20, 200);
    let height = width / 2;
    let mut text = format!(
        "scenario: {} targets, {} mules, seed {}\n\n",
        options.targets, options.mules, options.seed
    );
    // Road scenarios get a network summary plus travel-metric
    // connectivity: two geometrically close targets separated by deleted
    // blocks are *not* travel-neighbours, which is what decides whether
    // mules are needed at all. (Euclidean output is unchanged.)
    if let Some(index) = scenario.metric().road_index() {
        let range = scenario.field().radio().communication_range_m;
        let components = scenario.patrolled_components(range).len();
        let report = index.component();
        text.push_str(&format!(
            "road network ({}): {} nodes, {} edges, {:.1} km of road\n\
             patrolled connectivity at {:.0} m (travel metric): {} component(s)\n\n",
            scenario.metric().label(),
            index.graph().len(),
            index.graph().edge_count(),
            index.graph().total_length_m() / 1000.0,
            range,
            components,
        ));
        if report.dropped_nodes > 0 {
            text.push_str(&format!(
                "(generator kept the largest of {} components: {} of {} nodes)\n\n",
                report.component_count, report.kept_nodes, report.total_nodes,
            ));
        }
    }
    text.push_str(&render_scenario(&scenario, width, height));
    text.push_str("\n\n");
    match planner.plan(&scenario) {
        Ok(plan) => {
            text.push_str(&format!("{} route:\n", plan.planner_name));
            text.push_str(&render_plan(&scenario, &plan, width, height));
            text.push('\n');
        }
        Err(e) => return Err(e.into()),
    }
    Ok(CommandOutput::text_only(text))
}

fn run_simulate(options: &CliOptions) -> Result<CommandOutput, CommandError> {
    let scenario = build_scenario(options);
    let planner = build_planner_with(options.planner, chb_config_for(options));
    let plan = planner.plan(&scenario)?;
    let outcome = simulate(&scenario, &plan, options);

    let mut output = CommandOutput::text_only(metrics_text(&plan, &outcome));

    if let Some(svg_path) = &options.svg_path {
        let svg = plan_to_svg(&scenario, &plan, &SvgStyle::default());
        std::fs::write(svg_path, svg)?;
        output.files_written.push(svg_path.clone());
    }
    if let Some(prefix) = &options.csv_prefix {
        let (visits, mules) = mule_sim::write_csv_files(&outcome, std::path::Path::new(prefix))?;
        output
            .files_written
            .push(visits.to_string_lossy().into_owned());
        output
            .files_written
            .push(mules.to_string_lossy().into_owned());
    }
    Ok(output)
}

fn run_compare(options: &CliOptions) -> Result<CommandOutput, CommandError> {
    let scenario = build_scenario(options);
    let mut choices = vec![
        PlannerChoice::Random,
        PlannerChoice::Sweep,
        PlannerChoice::Chb,
        PlannerChoice::BTctp,
    ];
    if options.vips > 0 {
        choices.push(PlannerChoice::WTctpShortest);
        choices.push(PlannerChoice::WTctpBalancing);
    }
    if options.recharge {
        choices.push(PlannerChoice::RwTctp);
    }

    let mut table = TextTable::new(vec![
        "planner",
        "max interval (s)",
        "avg SD (s)",
        "avg DCDT (s)",
        "path (m)",
        "survived",
    ]);
    for choice in choices {
        let planner = build_planner_with(choice, chb_config_for(options));
        let plan = match planner.plan(&scenario) {
            Ok(p) => p,
            Err(e) => {
                table.add_row(vec![choice.label().to_string(), format!("error: {e}")]);
                continue;
            }
        };
        let outcome = simulate(&scenario, &plan, options);
        let intervals = IntervalReport::from_outcome(&outcome);
        let dcdt = DcdtSeries::from_outcome(&outcome);
        table.add_row(vec![
            choice.label().to_string(),
            format!("{:.0}", intervals.max_interval()),
            format!("{:.1}", intervals.average_sd()),
            format!("{:.0}", dcdt.average_dcdt(2)),
            format!("{:.0}", plan.max_cycle_length()),
            format!("{}", outcome.all_mules_survived()),
        ]);
    }
    Ok(CommandOutput::text_only(table.render()))
}

fn run_dynamics(options: &DynamicsOptions) -> Result<CommandOutput, CommandError> {
    let base = &options.base;
    let scenario = build_scenario(base);
    let disruption_config = DisruptionConfig {
        seed: base.seed,
        horizon_s: base.horizon_s,
        target_failures: options.fail_targets,
        recover_after_s: options.recover_after_s,
        late_arrivals: options.late_targets,
        mule_breakdowns: options.breakdowns,
        speed_windows: options.speed_windows,
        speed_factor: options.speed_factor,
    };
    let disruptions = DisruptionPlan::seeded(&scenario, &disruption_config);

    // Plan on the world as it looks at t = 0: late-arriving targets are
    // not yet known to the planner, so they are excluded until their
    // arrival triggers a replan.
    let planner = build_planner_with(base.planner, chb_config_for(base));
    let initial_world = scenario.restricted(
        &disruptions.late_target_ids(),
        scenario.mule_starts().to_vec(),
    );
    let plan = planner.plan(&initial_world)?;

    let sim_config = sim_config_for(base);
    let replanner = ReplanWithPlanner::new(build_planner_with(base.planner, chb_config_for(base)));
    let mut sim = DynamicSimulation::new(&scenario, &plan, &disruptions).with_config(sim_config);
    if !options.no_replan {
        sim = sim.with_replanner(&replanner);
    }
    let result = sim.run_for(base.horizon_s);

    let mut text = format!(
        "dynamic scenario: {} targets, {} mules, seed {}, horizon {:.0} s\n\
         planner: {}  replanning: {}\n\n",
        base.targets,
        base.mules,
        base.seed,
        base.horizon_s,
        plan.planner_name,
        if options.no_replan { "off" } else { "on" },
    );

    text.push_str("timeline:\n");
    if disruptions.is_empty() {
        text.push_str("  (no disruptions)\n");
    }
    for entry in &result.timeline {
        text.push_str(&format!(
            "  t={:>7.0}s  {}\n",
            entry.time_s, entry.description
        ));
    }
    text.push('\n');

    let phases = PhaseDelayReport::from_dynamic(&result);
    text.push_str("per-phase data-collection delay:\n");
    text.push_str(&phases.to_table().render());
    text.push('\n');

    let survivors = result
        .outcome
        .mules
        .iter()
        .filter(|m| m.status.survived())
        .count();
    text.push_str(&format!(
        "visits: {}  replans: {}  events fired: {}\n\
         overall mean delay: {:.1} s  surviving mules: {}/{}\n",
        result.outcome.total_visits(),
        result.replan_count(),
        result.events_fired,
        phases.overall_mean_delay_s(),
        survivors,
        result.outcome.mules.len(),
    ));
    Ok(CommandOutput::text_only(text))
}

/// Translates a disruption preset into the sweep's disruption axis value.
/// The template's seed and horizon are placeholders — the sweep runner
/// reseeds them per replica.
fn preset_to_config(preset: DisruptionPreset, horizon_s: f64) -> Option<DisruptionConfig> {
    match preset {
        DisruptionPreset::None => None,
        DisruptionPreset::Failures => Some(DisruptionConfig::failures_only(0, horizon_s)),
        DisruptionPreset::Breakdowns => Some(DisruptionConfig::breakdowns_only(0, horizon_s)),
        DisruptionPreset::Mixed => Some(DisruptionConfig::default_mixed(0, horizon_s)),
    }
}

fn run_sweep(options: &SweepOptions) -> Result<CommandOutput, CommandError> {
    let base = &options.base;
    let spec = SweepSpec::new(build_scenario_config(base))
        .with_seeds(options.seeds.clone())
        .with_mule_counts(options.mule_counts.clone())
        .with_speeds(options.speeds.clone())
        .with_disruptions(
            options
                .disruptions
                .iter()
                .map(|&p| preset_to_config(p, base.horizon_s))
                .collect(),
        )
        .with_replicas(options.replicas)
        .with_horizon(base.horizon_s);

    let sim_config = sim_config_for(base);
    let choice = base.planner;
    let chb = chb_config_for(base);
    let factory = move || build_planner_with(choice, chb);
    let cells = mule_sim::run_sweep(&factory, &spec, &sim_config, options.workers);
    let report = SweepReport::from_cells(&cells);

    let workers_label = options
        .workers
        .map(|w| w.to_string())
        .unwrap_or_else(|| "auto".to_string());
    let mut text = format!(
        "sweep: {} cells × {} replicas = {} runs\n\
         planner: {}  horizon: {:.0} s  workers: {}\n\n",
        spec.cell_count(),
        spec.replicas,
        spec.run_count(),
        choice.label(),
        spec.horizon_s,
        workers_label,
    );
    text.push_str(&report.to_table().render());

    let total_failures: usize = report.cells.iter().map(|c| c.failures).sum();
    if total_failures > 0 {
        text.push_str(&format!(
            "\nwarning: {total_failures} replica(s) failed to plan (see `fail` column)\n"
        ));
    }

    let mut output = CommandOutput::text_only(text);
    if let Some(path) = &base.csv_prefix {
        std::fs::write(path, report.to_csv())?;
        output.files_written.push(path.clone());
    }
    Ok(output)
}

fn run_bench_tours(options: &BenchToursOptions) -> Result<CommandOutput, CommandError> {
    let params = TourBenchParams {
        sizes: options.sizes.clone(),
        seed: options.seed,
        k: options.k,
        exact_cap: options.exact_cap,
        samples: options.samples,
    };
    let report = run_tour_bench(&params);

    let mut text = format!(
        "tour engine benchmark: seed {}  k {}  exact cap {}  samples {}\n\n",
        params.seed, params.k, params.exact_cap, params.samples
    );
    text.push_str(&report.to_table().render());

    let mut output = CommandOutput::text_only(text);
    if let Some(path) = &options.json_path {
        std::fs::write(path, report.to_json())?;
        output.files_written.push(path.clone());
    }

    // One traced candidates run at the largest size feeds `--trace-out`
    // and `--profile`; the timed measurements above stay untraced.
    if options.trace_out.is_some() || options.profile {
        let n = params.sizes.iter().copied().max().unwrap_or(200);
        let points = mule_workload::layout::bench_layout(params.seed, n);
        let config =
            ChbConfig::default().with_search(mule_graph::SearchMode::Candidates(params.k.max(1)));
        mule_obs::alloc::arm();
        let (_, trace) = mule_obs::capture(|| {
            mule_graph::construct_circuit_with(&points, &config);
        });
        mule_obs::alloc::disarm();
        if options.profile {
            output
                .text
                .push_str(&format!("\nself-time profile (n={n}):\n"));
            output
                .text
                .push_str(&mule_obs::FlatProfile::of(&trace).to_table());
        }
        if let Some(path) = &options.trace_out {
            std::fs::write(path, mule_obs::chrome_trace_json(&trace))?;
            output.files_written.push(path.clone());
        }
    }

    // The regression gates run *after* the JSON is written so a failing
    // run still leaves the artefact around for diagnosis.
    if let Some(bound) = options.max_ratio {
        if let Some(worst) = report.max_len_ratio() {
            if worst > bound {
                return Err(CommandError::Check(format!(
                    "tour-length ratio {worst:.4} exceeds --max-ratio {bound}"
                )));
            }
        }
    }
    if let Some(bound) = options.overhead_gate {
        let ratio = tracing_overhead_ratio(&params);
        output
            .text
            .push_str(&format!("\ntracing overhead: {ratio:.3}× (gate {bound})\n"));
        if ratio > bound {
            return Err(CommandError::Check(format!(
                "tracing overhead {ratio:.3}× exceeds --overhead-gate {bound}"
            )));
        }
    }
    Ok(output)
}

fn run_bench_routes(options: &BenchRoutesOptions) -> Result<CommandOutput, CommandError> {
    let params = RouteBenchParams {
        sizes: options.sizes.clone(),
        seed: options.seed,
        queries: options.queries,
        landmarks: options.landmarks,
    };
    let report = run_route_bench(&params);

    let mut text = format!(
        "road routing benchmark: seed {}  queries {}  landmarks {}\n\n",
        params.seed, params.queries, params.landmarks
    );
    text.push_str(&report.to_table().render());

    let mut output = CommandOutput::text_only(text);
    if let Some(path) = &options.json_path {
        std::fs::write(path, report.to_json())?;
        output.files_written.push(path.clone());
    }

    // Like `bench-tours`, the gate runs *after* the JSON is written so a
    // failing run still leaves the artefact around for diagnosis.
    if let Some(bound) = options.min_speedup {
        if let Some(speedup) = report.largest_alt_speedup() {
            if speedup < bound {
                return Err(CommandError::Check(format!(
                    "ALT speedup {speedup:.2}× below --min-speedup {bound} at the largest size"
                )));
            }
        }
    }
    Ok(output)
}

fn run_bench_scale(options: &BenchScaleOptions) -> Result<CommandOutput, CommandError> {
    let params = ScaleBenchParams {
        sizes: options.sizes.clone(),
        seed: options.seed,
        k: options.k,
        matrix_cap: options.matrix_cap,
        samples: options.samples,
    };
    let report = run_scale_bench(&params);

    let mut text = format!(
        "memory-scale benchmark: seed {}  k {}  matrix cap {}  samples {}\n\n",
        params.seed, params.k, params.matrix_cap, params.samples
    );
    text.push_str(&report.to_table().render());

    let mut output = CommandOutput::text_only(text);
    if let Some(path) = &options.json_path {
        std::fs::write(path, report.to_json())?;
        output.files_written.push(path.clone());
    }

    // Like `bench-tours`, the gates run *after* the JSON is written so a
    // failing run still leaves the artefact around for diagnosis.
    if let Some(bound) = options.max_bytes_per_target {
        let worst = report.max_bytes_per_target();
        if worst > bound {
            return Err(CommandError::Check(format!(
                "matrix-free footprint {worst:.1} bytes/target exceeds \
                 --max-bytes-per-target {bound}"
            )));
        }
    }
    if let Some(bound) = options.max_ratio {
        if let Some(worst) = report.max_len_ratio() {
            if worst > bound {
                return Err(CommandError::Check(format!(
                    "matrix-free/matrix tour-length ratio {worst:.4} exceeds --max-ratio {bound}"
                )));
            }
        }
    }
    Ok(output)
}

/// Maps a service-layer error onto the command error taxonomy.
fn api_error(e: mule_serve::ApiError) -> CommandError {
    match e {
        mule_serve::ApiError::Plan(plan_err) => CommandError::Plan(plan_err),
        mule_serve::ApiError::BadRequest(msg) => CommandError::Check(msg),
    }
}

/// `patrolctl plan`: print the plan-response document for the scenario
/// flags — byte-identical to what a server answers on `POST /v1/plan`
/// for the same spec (the CI smoke job diffs the two).
fn run_plan(options: &CliOptions) -> Result<CommandOutput, CommandError> {
    let spec = spec_from_options(options);
    let json = mule_serve::plan_response_json(&spec).map_err(api_error)?;
    Ok(CommandOutput::text_only(json))
}

/// `patrolctl serve`: run the daemon. Blocks until the process is
/// killed. The daemon's stderr carries **structured JSON log lines
/// only** (see `docs/OBSERVABILITY.md`): startup, fault arming, access
/// and slow-request records, breaker transitions — every line one JSON
/// object, so `2>server.log` yields a machine-checkable stream while
/// stdout stays clean for tooling.
fn run_serve(options: &ServeOptions) -> Result<CommandOutput, CommandError> {
    use mule_obs::log::{emit, LogEvent, Severity};
    mule_obs::log::install_stderr(options.log_level);
    if let Some(spec) = &options.fault_plan {
        let plan = mule_fault::FaultPlan::parse(options.fault_seed, spec)
            .map_err(|e| CommandError::Check(format!("--fault-plan: {e}")))?;
        emit(
            LogEvent::new(Severity::Info, "fault.armed")
                .field("plan", plan.to_string())
                .field("seed", options.fault_seed),
        );
        mule_fault::arm(plan);
    }
    let config = mule_serve::ServerConfig {
        addr: options.addr.clone(),
        workers: options.workers,
        cache_capacity: options.cache_size,
        queue_depth: options.queue_depth,
        slow_request_ms: options.slow_ms,
        deadline: options.deadline_ms.map(std::time::Duration::from_millis),
        breaker_threshold: options.breaker_threshold,
        breaker_cooldown: std::time::Duration::from_millis(options.breaker_cooldown_ms),
        degraded: options.degraded,
        debug_endpoints: options.debug_endpoints,
        trace_sample_rate: options.trace_sample,
        slo: options.slo.clone(),
        ..mule_serve::ServerConfig::default()
    };
    let server = mule_serve::start(config)?;
    emit(
        LogEvent::new(Severity::Info, "serve.listening")
            .field("addr", server.addr().to_string())
            .field("workers", options.workers)
            .field("debug_endpoints", options.debug_endpoints)
            .field("slo", options.slo.is_some()),
    );
    loop {
        std::thread::park();
    }
}

/// `patrolctl loadgen`: drive a running server and report/gate the
/// results.
fn run_loadgen(options: &LoadgenOptions) -> Result<CommandOutput, CommandError> {
    let base = ScenarioSpec {
        targets: options.targets,
        mules: options.mules,
        seed: options.seed,
        planner: options.planner.canonical_name().to_string(),
        ..ScenarioSpec::default()
    };
    let params = mule_serve::LoadgenParams {
        addr: options.addr.clone(),
        requests: options.requests,
        duration: options.duration_s.map(std::time::Duration::from_secs_f64),
        warmup: options.warmup,
        slo: options.slo.clone(),
        connections: options.connections,
        spec_pool: options.spec_pool,
        base,
        retry_budget: options.retries,
        ..mule_serve::LoadgenParams::default()
    };
    let report = mule_serve::run_loadgen(&params);

    let mut output = CommandOutput::text_only(report.render());
    if let Some(path) = &options.json_path {
        std::fs::write(path, report.to_json())?;
        output.files_written.push(path.clone());
    }

    // Gates run after the artefact is written, like `bench-tours`.
    if report.ok == 0 {
        return Err(CommandError::Check(format!(
            "no request succeeded against {} ({} errors) — is the server up?",
            options.addr, report.errors
        )));
    }
    if let Some(bound) = options.max_p99_ms {
        let p99 = report.p99_ms();
        if p99 > bound {
            return Err(CommandError::Check(format!(
                "p99 latency {p99:.2} ms exceeds --max-p99 {bound} ms"
            )));
        }
    }
    if let Some(bound) = options.min_rps {
        if report.rps < bound {
            return Err(CommandError::Check(format!(
                "throughput {:.1} req/s below --min-rps {bound}",
                report.rps
            )));
        }
    }
    Ok(output)
}

/// The default `chaos` fault plan: every fault kind across the serve
/// registry. The delay is armed once (`#1`), longer than any drill, so
/// its key stays in-flight for the rest of the run — which keeps the
/// firing sequence independent of wall-clock timing (see
/// docs/RELIABILITY.md).
const DEFAULT_CHAOS_PLAN: &str = "serve.plan=delay:60000@1#1,serve.plan=panic@0.12,\
     serve.cache=evict@0.25,serve.conn.read=io@0.06,serve.conn.write=io@0.06";

/// Installs a panic hook that swallows injected-fault panics (they are
/// caught and recovered by design; their default-hook backtraces would
/// bury the chaos report) while delegating everything else.
fn silence_injected_panics() {
    static QUIET: std::sync::Once = std::sync::Once::new();
    QUIET.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied());
            if message.is_some_and(|m| m.starts_with(mule_fault::INJECTED_PANIC_PREFIX)) {
                return;
            }
            previous(info);
        }));
    });
}

/// Client-observed tallies plus server-side accounting of one chaos
/// drill.
#[derive(Debug, Default)]
struct DrillOutcome {
    ok_fresh: usize,
    stale: usize,
    gateway_timeout_504: usize,
    unavailable_503: usize,
    server_error_500: usize,
    dropped: usize,
    firings: Vec<mule_fault::Firing>,
}

/// Sums every sample of a counter family in a Prometheus exposition.
fn prom_sum(text: &str, family: &str) -> u64 {
    text.lines()
        .filter(|line| {
            line.strip_prefix(family)
                .is_some_and(|rest| rest.starts_with('{') || rest.starts_with(' '))
        })
        .filter_map(|line| line.rsplit(' ').next()?.parse::<u64>().ok())
        .sum()
}

/// Sends one request on a fresh connection; `None` means the exchange
/// died at the transport level (the connection was dropped). The request
/// carries `Connection: close` so the server visits each connection
/// fault point exactly once per request — a keep-alive continuation
/// would visit `serve.conn.read` again after the response, letting a
/// fault fire where no client request is pending and skewing the
/// drill's accounting.
fn chaos_request(
    addr: &std::net::SocketAddr,
    body: &[u8],
) -> Option<mule_serve::http::ClientResponse> {
    use std::io::Write;
    let stream = std::net::TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .ok()?;
    stream.set_nodelay(true).ok()?;
    let mut writer = stream.try_clone().ok()?;
    let mut reader = std::io::BufReader::new(stream);
    let head = format!(
        "POST /v1/plan HTTP/1.1\r\nHost: mule-serve\r\nConnection: close\r\n\
         Content-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    writer.write_all(head.as_bytes()).ok()?;
    writer.write_all(body).ok()?;
    writer.flush().ok()?;
    mule_serve::http::read_response(&mut reader).ok()
}

/// Boots a degraded-mode server (optionally with `plan` armed), fires the
/// request schedule serially, and verifies the headline invariant: every
/// response is either byte-identical to the fault-free golden bytes or a
/// well-formed degraded answer attributable to a fired fault. Violations
/// are collected, not panicked, so one drill reports them all.
fn run_chaos_drill(
    options: &ChaosOptions,
    plan: Option<mule_fault::FaultPlan>,
    bodies: &[Vec<u8>],
    expected: &[Vec<u8>],
    violations: &mut Vec<String>,
) -> Result<DrillOutcome, CommandError> {
    let armed = plan.is_some();
    if let Some(plan) = plan {
        mule_fault::arm(plan);
    }
    let config = mule_serve::ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        deadline: Some(std::time::Duration::from_millis(options.deadline_ms)),
        degraded: true,
        ..mule_serve::ServerConfig::default()
    };
    let server = mule_serve::start(config)?;
    let addr = server.addr();

    let mut out = DrillOutcome::default();
    for i in 0..options.requests {
        let k = i % bodies.len();
        match chaos_request(&addr, &bodies[k]) {
            None => out.dropped += 1,
            Some(response) => match response.status {
                200 => {
                    if response.body != expected[k] {
                        violations.push(format!(
                            "request {i}: 200 body diverged from the golden bytes \
                             (spec {k}, X-Cache: {})",
                            response.header("x-cache").unwrap_or("?"),
                        ));
                    }
                    if response.header("x-cache") == Some("stale") {
                        out.stale += 1;
                    } else {
                        out.ok_fresh += 1;
                    }
                }
                504 => out.gateway_timeout_504 += 1,
                503 => out.unavailable_503 += 1,
                500 => {
                    out.server_error_500 += 1;
                    if !response.body_text().contains("injected panic") {
                        violations.push(format!(
                            "request {i}: unplanned 500: {}",
                            response.body_text()
                        ));
                    }
                }
                status => violations.push(format!("request {i}: unexpected status {status}")),
            },
        }
    }

    let prometheus = server.metrics_prometheus();
    server.shutdown();
    out.firings = mule_fault::firing_log();
    if armed {
        mule_fault::disarm();
    }

    let fired = |point: &str, kind: &str| -> usize {
        out.firings
            .iter()
            .filter(|f| f.point == point && f.kind == kind)
            .count()
    };
    let read_io = fired("serve.conn.read", "io");
    let write_io = fired("serve.conn.write", "io");
    let delays = fired("serve.plan", "delay");
    let panics = fired("serve.plan", "panic");
    if out.dropped != read_io + write_io {
        violations.push(format!(
            "{} dropped exchanges vs {} injected connection faults",
            out.dropped,
            read_io + write_io
        ));
    }
    if out.gateway_timeout_504 > 0 && delays == 0 {
        violations.push(format!(
            "{} unplanned 504s (no delay fault fired)",
            out.gateway_timeout_504
        ));
    }
    if out.unavailable_503 > 0 {
        violations.push(format!(
            "{} unplanned 503s (no breaker, no backpressure expected)",
            out.unavailable_503
        ));
    }
    if out.server_error_500 > panics {
        violations.push(format!(
            "{} 500s exceed {} injected panics",
            out.server_error_500, panics
        ));
    }
    // Accounting: the server parses every request except the ones a
    // `serve.conn.read` fault dropped before reading, and records exactly
    // one root `request` span per parsed request.
    let requests_total = prom_sum(&prometheus, "mule_requests_total");
    let span_requests = prom_sum(&prometheus, "mule_span_total{span=\"request\"}");
    let parsed = (options.requests - read_io) as u64;
    if requests_total != parsed {
        violations.push(format!(
            "request accounting: server counted {requests_total}, expected {parsed} \
             ({} sent − {read_io} read-faulted)",
            options.requests
        ));
    }
    if span_requests != requests_total {
        violations.push(format!(
            "span accounting: {span_requests} request spans vs {requests_total} counted requests"
        ));
    }
    Ok(out)
}

/// `patrolctl chaos`: the self-checking fault-injection drill. Runs the
/// same seeded fault plan twice (the firing sequences must be identical),
/// then once disarmed (every response must be byte-identical to the
/// golden bytes), and fails with `CommandError::Check` on any violation.
fn run_chaos(options: &ChaosOptions) -> Result<CommandOutput, CommandError> {
    silence_injected_panics();
    let plan_spec = options
        .fault_plan
        .clone()
        .unwrap_or_else(|| DEFAULT_CHAOS_PLAN.to_string());
    let plan = mule_fault::FaultPlan::parse(options.seed, &plan_spec)
        .map_err(|e| CommandError::Check(format!("--fault-plan: {e}")))?;

    // The golden bytes, computed offline: what every spec in the pool
    // must answer when a request for it succeeds, faults or not.
    let mut bodies = Vec::new();
    let mut expected = Vec::new();
    for k in 0..options.spec_pool {
        let spec = ScenarioSpec {
            targets: options.targets,
            mules: options.mules,
            seed: 1 + k as u64,
            planner: options.planner.canonical_name().to_string(),
            ..ScenarioSpec::default()
        };
        expected.push(
            mule_serve::plan_response_json(&spec)
                .map_err(api_error)?
                .into_bytes(),
        );
        bodies.push(
            mule_serve::api::spec_to_json(&spec)
                .to_json_string()
                .into_bytes(),
        );
    }

    let mut violations = Vec::new();
    let first = run_chaos_drill(
        options,
        Some(plan.clone()),
        &bodies,
        &expected,
        &mut violations,
    )?;
    let second = run_chaos_drill(options, Some(plan), &bodies, &expected, &mut violations)?;
    if first.firings != second.firings {
        violations.push(format!(
            "firing sequence not reproducible: run 1 fired {} faults, run 2 fired {}",
            first.firings.len(),
            second.firings.len()
        ));
    }

    let calm = run_chaos_drill(options, None, &bodies, &expected, &mut violations)?;
    if !calm.firings.is_empty() {
        violations.push(format!("disarmed run fired {} faults", calm.firings.len()));
    }
    if calm.ok_fresh != options.requests {
        violations.push(format!(
            "disarmed run degraded: {} of {} requests answered 200 fresh",
            calm.ok_fresh, options.requests
        ));
    }

    let mut text = format!(
        "chaos drill: {} requests, seed {}, plan {plan_spec}\n\
         armed:    {} ok, {} stale, {} x504, {} x503, {} x500, {} dropped \
         ({} faults fired)\n\
         rerun:    firing sequence identical ({} firings)\n\
         disarmed: {} ok, 0 faults — byte-identical to the golden bytes\n",
        options.requests,
        options.seed,
        first.ok_fresh,
        first.stale,
        first.gateway_timeout_504,
        first.unavailable_503,
        first.server_error_500,
        first.dropped,
        first.firings.len(),
        second.firings.len(),
        calm.ok_fresh,
    );
    if violations.is_empty() {
        text.push_str("chaos: OK — every response fault-free-identical or well-formed degraded\n");
        Ok(CommandOutput::text_only(text))
    } else {
        Err(CommandError::Check(format!(
            "chaos violations:\n  {}",
            violations.join("\n  ")
        )))
    }
}

/// Runs `f` under a captured trace when `--trace-out` / `--profile` was
/// given, writing the Chrome trace file and/or appending the self-time
/// profile table to the output. The counting allocator is armed around
/// the capture, so the profile's alloc columns are populated and the
/// Chrome trace carries the `heap_peak_live_bytes` counter track. With
/// neither flag the command runs untraced and disarmed, so default
/// output stays byte-identical (the golden tests pin it).
fn with_tracing(
    trace_out: Option<&str>,
    profile: bool,
    f: impl FnOnce() -> Result<CommandOutput, CommandError>,
) -> Result<CommandOutput, CommandError> {
    if trace_out.is_none() && !profile {
        return f();
    }
    mule_obs::alloc::arm();
    let (result, trace) = mule_obs::capture(f);
    mule_obs::alloc::disarm();
    let mut output = result?;
    if profile {
        output.text.push_str("\nself-time profile:\n");
        output
            .text
            .push_str(&mule_obs::FlatProfile::of(&trace).to_table());
    }
    if let Some(path) = trace_out {
        std::fs::write(path, mule_obs::chrome_trace_json(&trace))?;
        output.files_written.push(path.to_string());
    }
    Ok(output)
}

/// Executes a parsed command.
pub fn run_command(command: &CliCommand) -> Result<CommandOutput, CommandError> {
    match command {
        CliCommand::Help => Ok(CommandOutput::text_only(USAGE.to_string())),
        CliCommand::Render(options) => {
            with_tracing(options.trace_out.as_deref(), options.profile, || {
                run_render(options)
            })
        }
        CliCommand::Plan(options) => {
            with_tracing(options.trace_out.as_deref(), options.profile, || {
                run_plan(options)
            })
        }
        CliCommand::Simulate(options) => {
            with_tracing(options.trace_out.as_deref(), options.profile, || {
                run_simulate(options)
            })
        }
        CliCommand::Compare(options) => {
            with_tracing(options.trace_out.as_deref(), options.profile, || {
                run_compare(options)
            })
        }
        CliCommand::Dynamics(options) => with_tracing(
            options.base.trace_out.as_deref(),
            options.base.profile,
            || run_dynamics(options),
        ),
        CliCommand::Sweep(options) => with_tracing(
            options.base.trace_out.as_deref(),
            options.base.profile,
            || run_sweep(options),
        ),
        CliCommand::BenchTours(options) => run_bench_tours(options),
        CliCommand::BenchRoutes(options) => run_bench_routes(options),
        CliCommand::BenchScale(options) => run_bench_scale(options),
        CliCommand::Serve(options) => run_serve(options),
        CliCommand::Loadgen(options) => run_loadgen(options),
        CliCommand::Chaos(options) => run_chaos(options),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options() -> CliOptions {
        CliOptions {
            targets: 8,
            mules: 3,
            seed: 4,
            horizon_s: 15_000.0,
            ..CliOptions::default()
        }
    }

    #[test]
    fn plan_with_profile_appends_self_time_table() {
        let mut opts = options();
        opts.profile = true;
        let out = run_command(&CliCommand::Plan(opts)).unwrap();
        assert!(out.text.contains("self-time profile:"));
        assert!(out.text.contains("planner."));
        // The plan JSON body itself is still present before the profile.
        assert!(out.text.trim_start().starts_with('{'));
    }

    #[test]
    fn plan_with_trace_out_writes_a_chrome_trace_file() {
        let dir = std::env::temp_dir().join("patrolctl_traceout_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json").to_string_lossy().into_owned();
        let mut opts = options();
        opts.trace_out = Some(path.clone());
        let out = run_command(&CliCommand::Plan(opts)).unwrap();
        assert!(out.files_written.contains(&path));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"traceEvents\""));
        assert!(body.contains("\"request\"") || body.contains("\"planner."));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plan_output_is_unchanged_when_tracing_flags_are_off() {
        let traced = {
            let mut opts = options();
            opts.profile = true;
            run_command(&CliCommand::Plan(opts)).unwrap()
        };
        let plain = run_command(&CliCommand::Plan(options())).unwrap();
        assert!(!plain.text.contains("self-time profile:"));
        // The traced run's text starts with exactly the plain output.
        assert!(traced.text.starts_with(&plain.text));
    }

    #[test]
    fn help_prints_usage() {
        let out = run_command(&CliCommand::Help).unwrap();
        assert!(out.text.contains("USAGE"));
        assert!(out.files_written.is_empty());
    }

    #[test]
    fn render_produces_ascii_maps_for_scenario_and_plan() {
        let out = run_command(&CliCommand::Render(options())).unwrap();
        assert!(out.text.contains('S'), "sink marker in the map");
        assert!(out.text.contains("B-TCTP route"));
        assert!(out.text.matches('+').count() >= 4, "two bordered canvases");
    }

    #[test]
    fn simulate_reports_all_metric_sections() {
        let out = run_command(&CliCommand::Simulate(options())).unwrap();
        for needle in [
            "planner: B-TCTP",
            "visiting interval",
            "DCDT",
            "fairness",
            "energy",
        ] {
            assert!(
                out.text.contains(needle),
                "missing `{needle}` in:\n{}",
                out.text
            );
        }
    }

    #[test]
    fn simulate_with_rwtctp_needs_and_gets_a_station() {
        let mut opts = options();
        opts.planner = PlannerChoice::RwTctp;
        opts.recharge = true;
        opts.vips = 1;
        let out = run_command(&CliCommand::Simulate(opts)).unwrap();
        assert!(out.text.contains("RW-TCTP"));
        assert!(out.text.contains("fleet survived: true"));
    }

    #[test]
    fn simulate_writes_requested_files() {
        let dir = std::env::temp_dir().join("patrolctl_test_out");
        std::fs::create_dir_all(&dir).unwrap();
        let mut opts = options();
        opts.svg_path = Some(dir.join("plan.svg").to_string_lossy().into_owned());
        opts.csv_prefix = Some(dir.join("trace").to_string_lossy().into_owned());
        let out = run_command(&CliCommand::Simulate(opts)).unwrap();
        assert_eq!(out.files_written.len(), 3);
        for f in &out.files_written {
            assert!(std::path::Path::new(f).exists(), "{f} should exist");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compare_lists_the_baselines_and_tctp() {
        let out = run_command(&CliCommand::Compare(options())).unwrap();
        for planner in ["Random", "Sweep", "CHB", "B-TCTP"] {
            assert!(
                out.text.contains(planner),
                "{planner} missing:\n{}",
                out.text
            );
        }
        // Weighted planners only appear when VIPs are requested.
        assert!(!out.text.contains("W-TCTP"));
        let mut with_vips = options();
        with_vips.vips = 2;
        let out2 = run_command(&CliCommand::Compare(with_vips)).unwrap();
        assert!(out2.text.contains("W-TCTP (shortest)"));
    }

    #[test]
    fn dynamics_reports_timeline_phases_and_summary() {
        let opts = DynamicsOptions {
            base: options(),
            fail_targets: 1,
            breakdowns: 1,
            recover_after_s: Some(4_000.0),
            ..DynamicsOptions::default()
        };
        let out = run_command(&CliCommand::Dynamics(opts)).unwrap();
        for needle in [
            "dynamic scenario",
            "replanning: on",
            "timeline:",
            "fails",
            "breaks down",
            "replan (B-TCTP)",
            "per-phase data-collection delay",
            "mean delay",
            "replans:",
            "surviving mules: 2/3",
        ] {
            assert!(
                out.text.contains(needle),
                "missing `{needle}` in:\n{}",
                out.text
            );
        }
        assert!(out.files_written.is_empty());
    }

    #[test]
    fn dynamics_is_deterministic_across_runs_with_the_same_seed() {
        let opts = DynamicsOptions {
            base: options(),
            fail_targets: 2,
            breakdowns: 1,
            late_targets: 1,
            speed_windows: 1,
            ..DynamicsOptions::default()
        };
        let a = run_command(&CliCommand::Dynamics(opts.clone())).unwrap();
        let b = run_command(&CliCommand::Dynamics(opts.clone())).unwrap();
        assert_eq!(a, b, "same seed must reproduce the same report");
        let other_seed = DynamicsOptions {
            base: CliOptions {
                seed: 99,
                ..opts.base.clone()
            },
            ..opts
        };
        let c = run_command(&CliCommand::Dynamics(other_seed)).unwrap();
        assert_ne!(a, c, "a different seed should disrupt differently");
    }

    #[test]
    fn dynamics_without_replanning_still_runs() {
        let opts = DynamicsOptions {
            base: options(),
            no_replan: true,
            ..DynamicsOptions::default()
        };
        let out = run_command(&CliCommand::Dynamics(opts)).unwrap();
        assert!(out.text.contains("replanning: off"));
        assert!(out.text.contains("replans: 0"));
    }

    fn sweep_options() -> SweepOptions {
        SweepOptions {
            base: CliOptions {
                targets: 6,
                horizon_s: 5_000.0,
                ..CliOptions::default()
            },
            seeds: vec![1, 2],
            mule_counts: vec![2, 3],
            replicas: 2,
            ..SweepOptions::default()
        }
    }

    #[test]
    fn sweep_prints_one_row_per_cell_with_statistics() {
        let out = run_command(&CliCommand::Sweep(sweep_options())).unwrap();
        assert!(out.text.contains("4 cells × 2 replicas = 8 runs"));
        assert!(out.text.contains("max interval (s)"));
        assert!(out.text.contains('±'), "CI columns present:\n{}", out.text);
        // One table row per cell: seeds {1,2} × mules {2,3}.
        assert_eq!(out.text.matches(" none ").count(), 4, "{}", out.text);
        assert!(out.files_written.is_empty());
    }

    #[test]
    fn sweep_writes_the_results_csv_when_requested() {
        let dir = std::env::temp_dir().join("patrolctl_sweep_test_out");
        std::fs::create_dir_all(&dir).unwrap();
        let mut opts = sweep_options();
        let path = dir.join("sweep.csv").to_string_lossy().into_owned();
        opts.base.csv_prefix = Some(path.clone());
        let out = run_command(&CliCommand::Sweep(opts)).unwrap();
        assert_eq!(out.files_written, vec![path.clone()]);
        let csv = std::fs::read_to_string(&path).unwrap();
        assert_eq!(csv.lines().count(), 5, "header + 4 cells:\n{csv}");
        assert!(csv.starts_with("seed,mules,speed_m_per_s"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_with_disruption_axis_reports_replans() {
        let mut opts = sweep_options();
        opts.seeds = vec![1];
        opts.mule_counts = vec![3];
        opts.disruptions = vec![DisruptionPreset::None, DisruptionPreset::Mixed];
        let out = run_command(&CliCommand::Sweep(opts)).unwrap();
        assert!(out.text.contains("2 cells"));
        assert!(
            out.text.contains("fail=1") || out.text.contains("bd=1"),
            "disruption label column:\n{}",
            out.text
        );
    }

    #[test]
    fn sweep_is_deterministic_for_any_worker_count() {
        let mut one = sweep_options();
        one.workers = Some(1);
        let mut many = sweep_options();
        many.workers = Some(4);
        let a = run_command(&CliCommand::Sweep(one)).unwrap();
        let b = run_command(&CliCommand::Sweep(many)).unwrap();
        // The workers line differs; every statistic must not.
        let strip = |t: &str| {
            t.lines()
                .filter(|l| !l.contains("workers:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&a.text), strip(&b.text));
    }

    fn bench_tours_options() -> BenchToursOptions {
        BenchToursOptions {
            sizes: vec![20, 40],
            seed: 5,
            k: 8,
            exact_cap: 40,
            samples: 1,
            json_path: None,
            max_ratio: None,
            overhead_gate: None,
            trace_out: None,
            profile: false,
        }
    }

    #[test]
    fn bench_tours_reports_speedups_and_ratios() {
        let out = run_command(&CliCommand::BenchTours(bench_tours_options())).unwrap();
        assert!(out.text.contains("tour engine benchmark"));
        assert!(out.text.contains("speedup"));
        assert!(out.text.contains("length ratio"));
        assert!(out.files_written.is_empty());
    }

    #[test]
    fn bench_tours_writes_the_json_artefact() {
        let dir = std::env::temp_dir().join("patrolctl_benchtours_test_out");
        std::fs::create_dir_all(&dir).unwrap();
        let mut opts = bench_tours_options();
        let path = dir.join("BENCH_tours.json").to_string_lossy().into_owned();
        opts.json_path = Some(path.clone());
        let out = run_command(&CliCommand::BenchTours(opts)).unwrap();
        assert_eq!(out.files_written, vec![path.clone()]);
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"schema\": \"bench-tours/v2\""));
        assert!(json.contains("\"n\": 20"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_tours_ratio_gate_passes_and_fails() {
        // A generous bound passes …
        let mut opts = bench_tours_options();
        opts.max_ratio = Some(2.0);
        assert!(run_command(&CliCommand::BenchTours(opts)).is_ok());
        // … an impossible bound fails with a Check error (ratios are > 0.9
        // on any real instance).
        let mut opts = bench_tours_options();
        opts.max_ratio = Some(0.5);
        let err = run_command(&CliCommand::BenchTours(opts)).unwrap_err();
        assert!(err.to_string().contains("check failed"), "{err}");
        assert!(err.to_string().contains("--max-ratio"));
    }

    fn bench_routes_options() -> BenchRoutesOptions {
        BenchRoutesOptions {
            sizes: vec![100, 400],
            seed: 5,
            queries: 30,
            landmarks: 4,
            json_path: None,
            min_speedup: None,
        }
    }

    #[test]
    fn bench_routes_reports_speedups_and_writes_json() {
        let out = run_command(&CliCommand::BenchRoutes(bench_routes_options())).unwrap();
        assert!(out.text.contains("road routing benchmark"));
        assert!(out.text.contains("ALT speedup"));
        assert!(out.files_written.is_empty());

        let dir = std::env::temp_dir().join("patrolctl_benchroutes_test_out");
        std::fs::create_dir_all(&dir).unwrap();
        let mut opts = bench_routes_options();
        let path = dir.join("BENCH_routes.json").to_string_lossy().into_owned();
        opts.json_path = Some(path.clone());
        let out = run_command(&CliCommand::BenchRoutes(opts)).unwrap();
        assert_eq!(out.files_written, vec![path.clone()]);
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"schema\": \"bench-routes/v1\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    fn bench_scale_options() -> BenchScaleOptions {
        BenchScaleOptions {
            sizes: vec![200, 500],
            seed: 5,
            k: 8,
            matrix_cap: 400,
            samples: 1,
            json_path: None,
            max_bytes_per_target: None,
            max_ratio: None,
        }
    }

    #[test]
    fn bench_scale_reports_memory_and_writes_json() {
        let out = run_command(&CliCommand::BenchScale(bench_scale_options())).unwrap();
        assert!(out.text.contains("memory-scale benchmark"));
        assert!(out.text.contains("bytes/target"));
        assert!(out.files_written.is_empty());

        let dir = std::env::temp_dir().join("patrolctl_benchscale_test_out");
        std::fs::create_dir_all(&dir).unwrap();
        let mut opts = bench_scale_options();
        let path = dir.join("BENCH_scale.json").to_string_lossy().into_owned();
        opts.json_path = Some(path.clone());
        let out = run_command(&CliCommand::BenchScale(opts)).unwrap();
        assert_eq!(out.files_written, vec![path.clone()]);
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"schema\": \"bench-scale/v1\""));
        // n = 500 sits above the 400-point matrix cap, so its matrix
        // columns must be explicit nulls.
        assert!(json.contains("\"matrix_construction_ms\": null"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_scale_gates_pass_and_fail_after_the_artefact_is_written() {
        // Generous bounds pass …
        let mut opts = bench_scale_options();
        opts.max_bytes_per_target = Some(1e12);
        opts.max_ratio = Some(2.0);
        assert!(run_command(&CliCommand::BenchScale(opts)).is_ok());

        // … an impossible footprint bound fails with a Check error, and
        // the artefact is still written before the gate fires.
        let dir = std::env::temp_dir().join("patrolctl_benchscale_gate_out");
        std::fs::create_dir_all(&dir).unwrap();
        let mut opts = bench_scale_options();
        let path = dir.join("BENCH_scale.json").to_string_lossy().into_owned();
        opts.json_path = Some(path.clone());
        opts.max_bytes_per_target = Some(1.0);
        let err = run_command(&CliCommand::BenchScale(opts)).unwrap_err();
        assert!(err.to_string().contains("check failed"), "{err}");
        assert!(err.to_string().contains("--max-bytes-per-target"));
        assert!(std::fs::metadata(&path).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_routes_speedup_gate_passes_and_fails() {
        // An impossible bound fails with a Check error even at tiny sizes…
        let mut opts = bench_routes_options();
        opts.min_speedup = Some(1_000_000.0);
        let err = run_command(&CliCommand::BenchRoutes(opts)).unwrap_err();
        assert!(err.to_string().contains("--min-speedup"), "{err}");
        // …and a trivial bound passes.
        let mut opts = bench_routes_options();
        opts.min_speedup = Some(0.0);
        assert!(run_command(&CliCommand::BenchRoutes(opts)).is_ok());
    }

    #[test]
    fn road_metric_threads_from_flags_to_plans_and_simulations() {
        let mut opts = options();
        opts.metric = mule_workload::MetricSpec::Road(mule_road::RoadNetKind::Grid);
        // The spec carries the metric, so `plan` and the server agree.
        let spec = spec_from_options(&opts);
        assert_eq!(spec.metric, opts.metric);
        let out = run_command(&CliCommand::Plan(opts.clone())).unwrap();
        assert!(out.text.contains("\"metric\": \"road-grid\""));
        assert!(out.text.contains("\"path\""), "road geometry in response");
        // Simulate runs end to end over the road world.
        let sim = run_command(&CliCommand::Simulate(opts.clone())).unwrap();
        assert!(sim.text.contains("planner: B-TCTP"));
        // Deterministic.
        assert_eq!(
            run_command(&CliCommand::Plan(opts.clone())).unwrap().text,
            out.text
        );
        // And distinct from the Euclidean plan for the same knobs.
        let euclid = run_command(&CliCommand::Plan(options())).unwrap();
        assert_ne!(euclid.text, out.text);
    }

    #[test]
    fn render_reports_the_road_network_and_its_connectivity() {
        let mut opts = options();
        opts.metric = mule_workload::MetricSpec::Road(mule_road::RoadNetKind::Grid);
        let out = run_command(&CliCommand::Render(opts)).unwrap();
        assert!(out.text.contains("road network (road-grid):"));
        assert!(out.text.contains("patrolled connectivity"));
        assert!(out.text.contains("component(s)"));
        // Euclidean render output carries no road lines.
        let euclid = run_command(&CliCommand::Render(options())).unwrap();
        assert!(!euclid.text.contains("road network"));
    }

    #[test]
    fn search_mode_threads_through_to_identical_small_scenario_plans() {
        // At paper sizes, auto and exact must produce byte-identical
        // reports (the determinism contract); candidates may differ but
        // must still run every planner successfully.
        let base = options();
        let mut exact = options();
        exact.search = crate::args::SearchChoice::Exact;
        let a = run_command(&CliCommand::Simulate(base)).unwrap();
        let b = run_command(&CliCommand::Simulate(exact)).unwrap();
        assert_eq!(a, b);

        let mut cand = options();
        cand.search = crate::args::SearchChoice::Candidates;
        cand.knn = Some(6);
        let c = run_command(&CliCommand::Simulate(cand)).unwrap();
        assert!(c.text.contains("planner: B-TCTP"));
    }

    #[test]
    fn spec_from_options_mirrors_the_scenario_mapping() {
        let mut opts = options();
        opts.vips = 2;
        opts.vip_weight = 3;
        opts.recharge = true;
        opts.planner = PlannerChoice::RwTctp;
        let spec = spec_from_options(&opts);
        assert_eq!(spec.targets, 8);
        assert_eq!(spec.planner, "rw-tctp");
        assert_eq!(spec.horizon_s, 15_000.0);
        // The config built through the spec is the config the offline
        // commands use — one mapping, two front ends.
        assert_eq!(spec.scenario_config(), build_scenario_config(&opts));
    }

    #[test]
    fn plan_prints_the_service_response_document() {
        let out = run_command(&CliCommand::Plan(options())).unwrap();
        assert!(out.files_written.is_empty());
        // Byte-identical to the service-layer computation for the same
        // spec — the contract the CI smoke job diffs over HTTP.
        let expected = mule_serve::plan_response_json(&spec_from_options(&options())).unwrap();
        assert_eq!(out.text, expected);
        assert!(out.text.contains("\"schema\": \"plan-response/v1\""));
        assert!(out.text.ends_with('\n'));

        let mut bad = options();
        bad.mules = 0;
        let err = run_command(&CliCommand::Plan(bad)).unwrap_err();
        assert!(err.to_string().contains("planning failed"));
    }

    #[test]
    fn loadgen_against_a_dead_address_fails_the_gate() {
        let opts = LoadgenOptions {
            addr: "127.0.0.1:1".to_string(),
            requests: 4,
            connections: 2,
            ..LoadgenOptions::default()
        };
        let err = run_command(&CliCommand::Loadgen(opts)).unwrap_err();
        assert!(err.to_string().contains("no request succeeded"), "{err}");
    }

    #[test]
    fn planning_errors_surface_as_command_errors() {
        let mut opts = options();
        opts.mules = 0;
        let err = run_command(&CliCommand::Simulate(opts)).unwrap_err();
        assert!(err.to_string().contains("planning failed"));
    }
}
