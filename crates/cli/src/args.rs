//! Command-line argument parsing for `patrolctl`.
//!
//! Hand-rolled (no external parser crates): flags are `--name value` pairs
//! after a leading subcommand. Unknown flags and malformed values are
//! reported as [`CliError`]s with a human-readable message.

use std::fmt;

/// Which planner a command should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerChoice {
    /// B-TCTP (default).
    BTctp,
    /// W-TCTP with the Shortest-Length policy.
    WTctpShortest,
    /// W-TCTP with the Balancing-Length policy.
    WTctpBalancing,
    /// RW-TCTP (requires `--recharge`).
    RwTctp,
    /// The CHB baseline.
    Chb,
    /// The Sweep baseline.
    Sweep,
    /// The Random baseline.
    Random,
}

impl PlannerChoice {
    /// Parses a planner name (case-insensitive).
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s.to_ascii_lowercase().as_str() {
            "b-tctp" | "btctp" | "tctp" => Ok(PlannerChoice::BTctp),
            "w-tctp" | "wtctp" | "w-tctp-shortest" | "shortest" => Ok(PlannerChoice::WTctpShortest),
            "w-tctp-balancing" | "balancing" => Ok(PlannerChoice::WTctpBalancing),
            "rw-tctp" | "rwtctp" => Ok(PlannerChoice::RwTctp),
            "chb" => Ok(PlannerChoice::Chb),
            "sweep" => Ok(PlannerChoice::Sweep),
            "random" => Ok(PlannerChoice::Random),
            other => Err(CliError::InvalidValue {
                flag: "--planner".into(),
                value: other.into(),
            }),
        }
    }

    /// Display name used in output tables.
    pub fn label(&self) -> &'static str {
        match self {
            PlannerChoice::BTctp => "B-TCTP",
            PlannerChoice::WTctpShortest => "W-TCTP (shortest)",
            PlannerChoice::WTctpBalancing => "W-TCTP (balancing)",
            PlannerChoice::RwTctp => "RW-TCTP",
            PlannerChoice::Chb => "CHB",
            PlannerChoice::Sweep => "Sweep",
            PlannerChoice::Random => "Random",
        }
    }

    /// Canonical wire name used in `ScenarioSpec` requests — the name the
    /// `mule-serve` API (and [`PlannerChoice::parse`]) accepts.
    pub fn canonical_name(&self) -> &'static str {
        match self {
            PlannerChoice::BTctp => "b-tctp",
            PlannerChoice::WTctpShortest => "w-tctp-shortest",
            PlannerChoice::WTctpBalancing => "w-tctp-balancing",
            PlannerChoice::RwTctp => "rw-tctp",
            PlannerChoice::Chb => "chb",
            PlannerChoice::Sweep => "sweep",
            PlannerChoice::Random => "random",
        }
    }
}

/// Which tour-search mode the planners' circuit construction uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchChoice {
    /// Exact all-pairs construction and local search.
    Exact,
    /// Candidate-list (k-nearest-neighbour) search; `--knn` sets k.
    Candidates,
    /// Exact below the byte-stability threshold, candidate lists above
    /// (the default — see `docs/DETERMINISM.md`).
    #[default]
    Auto,
}

impl SearchChoice {
    /// Parses a search-mode name (case-insensitive).
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s.to_ascii_lowercase().as_str() {
            "exact" => Ok(SearchChoice::Exact),
            "candidates" | "cand" | "knn" => Ok(SearchChoice::Candidates),
            "auto" => Ok(SearchChoice::Auto),
            other => Err(CliError::InvalidValue {
                flag: "--search".into(),
                value: other.into(),
            }),
        }
    }

    /// Translates the choice (plus the optional `--knn` width) into the
    /// graph crate's search mode.
    pub fn to_mode(self, knn: Option<usize>) -> mule_graph::SearchMode {
        match self {
            SearchChoice::Exact => mule_graph::SearchMode::Exact,
            SearchChoice::Candidates => mule_graph::SearchMode::Candidates(
                knn.unwrap_or(mule_graph::chb::DEFAULT_CANDIDATES_K).max(1),
            ),
            SearchChoice::Auto => mule_graph::SearchMode::Auto,
        }
    }
}

/// Parses a `--metric` value (case-insensitive; `road` aliases the grid
/// network).
fn parse_metric(value: &str) -> Result<mule_workload::MetricSpec, CliError> {
    mule_workload::MetricSpec::parse(value).ok_or_else(|| CliError::InvalidValue {
        flag: "--metric".into(),
        value: value.into(),
    })
}

/// Scenario + execution options shared by every subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// Number of targets.
    pub targets: usize,
    /// Number of mules.
    pub mules: usize,
    /// RNG seed.
    pub seed: u64,
    /// Number of VIP targets.
    pub vips: usize,
    /// Weight of each VIP.
    pub vip_weight: u32,
    /// Whether the scenario includes a recharge station.
    pub recharge: bool,
    /// Planner to use.
    pub planner: PlannerChoice,
    /// Simulation horizon in seconds.
    pub horizon_s: f64,
    /// Optional SVG output path.
    pub svg_path: Option<String>,
    /// Optional CSV trace prefix.
    pub csv_prefix: Option<String>,
    /// ASCII canvas width for `render`.
    pub canvas_width: usize,
    /// Tour-search mode of the circuit construction.
    pub search: SearchChoice,
    /// Candidate-list width (k nearest neighbours) when `search` is
    /// `candidates`; `None` uses the engine default.
    pub knn: Option<usize>,
    /// Travel metric of the scenario (`euclidean` | `road`/`road-grid` |
    /// `road-planar`).
    pub metric: mule_workload::MetricSpec,
    /// Optional path of a Chrome `trace_event` JSON file to write the
    /// run's span trace to (loadable in `about:tracing` / Perfetto).
    pub trace_out: Option<String>,
    /// Append a self-time profile table to the command's output.
    pub profile: bool,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            targets: 10,
            mules: 4,
            seed: 1,
            vips: 0,
            vip_weight: 2,
            recharge: false,
            planner: PlannerChoice::BTctp,
            horizon_s: 40_000.0,
            svg_path: None,
            csv_prefix: None,
            canvas_width: 72,
            search: SearchChoice::Auto,
            knn: None,
            metric: mule_workload::MetricSpec::Euclidean,
            trace_out: None,
            profile: false,
        }
    }
}

/// Options of the `bench-tours` subcommand (the tracked tour-engine
/// benchmark; see `docs/PERFORMANCE.md`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchToursOptions {
    /// Instance sizes to bench.
    pub sizes: Vec<usize>,
    /// Topology seed.
    pub seed: u64,
    /// Candidate-list width.
    pub k: usize,
    /// Largest size at which the exact pipeline is still timed.
    pub exact_cap: usize,
    /// Timed repetitions per measurement (minimum is reported).
    pub samples: usize,
    /// Optional path of the JSON artefact to write (`BENCH_tours.json`).
    pub json_path: Option<String>,
    /// When set, the command fails if any measured tour-length ratio
    /// (candidates / exact) exceeds this bound — the CI regression gate.
    pub max_ratio: Option<f64>,
    /// When set, the command fails if the traced/untraced wall-clock
    /// ratio of the candidates pipeline exceeds this bound — the CI gate
    /// keeping span collection cheap (tracked bound: 1.05).
    pub overhead_gate: Option<f64>,
    /// Optional path of a Chrome `trace_event` JSON of one traced
    /// candidates run at the largest size.
    pub trace_out: Option<String>,
    /// Append a self-time profile table of that traced run to the output.
    pub profile: bool,
}

impl Default for BenchToursOptions {
    fn default() -> Self {
        let defaults = mule_bench::tourbench::TourBenchParams::default();
        BenchToursOptions {
            sizes: defaults.sizes,
            seed: defaults.seed,
            k: defaults.k,
            exact_cap: defaults.exact_cap,
            samples: defaults.samples,
            json_path: None,
            max_ratio: None,
            overhead_gate: None,
            trace_out: None,
            profile: false,
        }
    }
}

/// Options of the `bench-routes` subcommand (the tracked road-routing
/// benchmark; see `docs/ROADS.md`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRoutesOptions {
    /// Approximate network sizes (node counts) to bench.
    pub sizes: Vec<usize>,
    /// Network + query seed.
    pub seed: u64,
    /// Point-to-point queries per flavour.
    pub queries: usize,
    /// ALT landmark count.
    pub landmarks: usize,
    /// Optional path of the JSON artefact to write (`BENCH_routes.json`).
    pub json_path: Option<String>,
    /// When set, the command fails if the largest network's ALT speedup
    /// over plain Dijkstra falls below this bound — the CI regression
    /// gate for the tracked "ALT ≥ 3× Dijkstra at 10k nodes" claim.
    pub min_speedup: Option<f64>,
}

impl Default for BenchRoutesOptions {
    fn default() -> Self {
        let defaults = mule_bench::routebench::RouteBenchParams::default();
        BenchRoutesOptions {
            sizes: defaults.sizes,
            seed: defaults.seed,
            queries: defaults.queries,
            landmarks: defaults.landmarks,
            json_path: None,
            min_speedup: None,
        }
    }
}

/// Options of the `bench-scale` subcommand (the tracked memory-scale
/// benchmark; see `docs/PERFORMANCE.md`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchScaleOptions {
    /// Instance sizes to bench.
    pub sizes: Vec<usize>,
    /// Topology seed.
    pub seed: u64,
    /// Candidate-list width.
    pub k: usize,
    /// Largest size at which the `O(n²)` matrix-backed flavour still runs.
    pub matrix_cap: usize,
    /// Timed repetitions per measurement (minimum is reported).
    pub samples: usize,
    /// Optional path of the JSON artefact to write (`BENCH_scale.json`).
    pub json_path: Option<String>,
    /// When set, the command fails if the matrix-free pipeline's peak
    /// live bytes per target exceed this bound at any size — the CI
    /// regression gate for the million-target memory budget.
    pub max_bytes_per_target: Option<f64>,
    /// When set, the command fails if any measured tour-length ratio
    /// (matrix-free / matrix-backed) exceeds this bound.
    pub max_ratio: Option<f64>,
}

impl Default for BenchScaleOptions {
    fn default() -> Self {
        let defaults = mule_bench::scalebench::ScaleBenchParams::default();
        BenchScaleOptions {
            sizes: defaults.sizes,
            seed: defaults.seed,
            k: defaults.k,
            matrix_cap: defaults.matrix_cap,
            samples: defaults.samples,
            json_path: None,
            max_bytes_per_target: None,
            max_ratio: None,
        }
    }
}

/// Disruption knobs of the `dynamics` subcommand, on top of the shared
/// scenario options.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsOptions {
    /// Scenario + execution options shared with the other subcommands.
    pub base: CliOptions,
    /// How many targets fail mid-run.
    pub fail_targets: usize,
    /// When set, failed targets recover this many seconds after failing.
    pub recover_after_s: Option<f64>,
    /// How many targets arrive late.
    pub late_targets: usize,
    /// How many mules break down.
    pub breakdowns: usize,
    /// How many reduced-speed windows to open.
    pub speed_windows: usize,
    /// Speed multiplier inside each window.
    pub speed_factor: f64,
    /// Disable online replanning (disruptions still apply).
    pub no_replan: bool,
}

impl Default for DynamicsOptions {
    fn default() -> Self {
        DynamicsOptions {
            base: CliOptions::default(),
            fail_targets: 1,
            recover_after_s: None,
            late_targets: 0,
            breakdowns: 1,
            speed_windows: 0,
            speed_factor: 0.5,
            no_replan: false,
        }
    }
}

/// A named disruption preset of the `sweep` disruption axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisruptionPreset {
    /// Static run (no disruptions).
    None,
    /// Target failures with recovery (`DisruptionConfig::failures_only`).
    Failures,
    /// A single mule breakdown (`DisruptionConfig::breakdowns_only`).
    Breakdowns,
    /// One of everything (`DisruptionConfig::default_mixed`).
    Mixed,
}

impl DisruptionPreset {
    /// Parses a preset name (case-insensitive).
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s.to_ascii_lowercase().as_str() {
            "none" | "static" => Ok(DisruptionPreset::None),
            "failures" | "fail" => Ok(DisruptionPreset::Failures),
            "breakdowns" | "breakdown" => Ok(DisruptionPreset::Breakdowns),
            "mixed" => Ok(DisruptionPreset::Mixed),
            other => Err(CliError::InvalidValue {
                flag: "--disruptions".into(),
                value: other.into(),
            }),
        }
    }
}

impl std::str::FromStr for DisruptionPreset {
    type Err = CliError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DisruptionPreset::parse(s)
    }
}

/// Grid axes and execution knobs of the `sweep` subcommand, on top of the
/// shared scenario options.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOptions {
    /// Scenario + execution options shared with the other subcommands
    /// (`--seed` / `--mules` seed the default axes; `--horizon` is the
    /// per-replica horizon; `--csv` names the results CSV).
    pub base: CliOptions,
    /// Seed axis (defaults to `[--seed]`).
    pub seeds: Vec<u64>,
    /// Fleet-size axis (defaults to `[--mules]`).
    pub mule_counts: Vec<usize>,
    /// Speed axis in m/s (defaults to the paper's 2 m/s).
    pub speeds: Vec<f64>,
    /// Disruption axis (defaults to `[none]`).
    pub disruptions: Vec<DisruptionPreset>,
    /// Replications per cell.
    pub replicas: usize,
    /// Worker-pool size override (`None` = auto: `MULE_PAR_WORKERS` or all
    /// cores).
    pub workers: Option<usize>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        let base = CliOptions::default();
        SweepOptions {
            seeds: vec![base.seed],
            mule_counts: vec![base.mules],
            speeds: vec![mule_workload::PAPER_SPEED_M_PER_S],
            disruptions: vec![DisruptionPreset::None],
            replicas: 8,
            workers: None,
            base,
        }
    }
}

/// Options of the `serve` subcommand (the `mule-serve` daemon).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Connection-handler worker threads.
    pub workers: usize,
    /// Plan-cache capacity in entries (0 disables caching).
    pub cache_size: usize,
    /// Maximum concurrently admitted connections; beyond it, new
    /// connections get `503` + `Retry-After`.
    pub queue_depth: usize,
    /// Opt-in slow-request log threshold, milliseconds (`None` = off).
    pub slow_ms: Option<f64>,
    /// Per-request compute/read deadline, milliseconds (`None` = off).
    pub deadline_ms: Option<u64>,
    /// Circuit-breaker threshold: consecutive compute panics/timeouts
    /// before a route opens (`None` = breakers off).
    pub breaker_threshold: Option<usize>,
    /// Circuit-breaker cooldown before the half-open probe, milliseconds.
    pub breaker_cooldown_ms: u64,
    /// Serve last-good (stale) bytes instead of 5xx where possible.
    pub degraded: bool,
    /// Fault plan to arm at startup (`point=kind[@prob][#limit],...`).
    pub fault_plan: Option<String>,
    /// Seed of the armed fault plan's firing decisions.
    pub fault_seed: u64,
    /// Expose the read-only `GET /debug/*` introspection endpoints.
    pub debug_endpoints: bool,
    /// Head-based trace sampling rate in `[0, 1]` (slow and 5xx requests
    /// are tail-promoted regardless).
    pub trace_sample: f64,
    /// SLO objectives tracked as burn-rate gauges on `/metrics`.
    pub slo: Option<mule_obs::SloSpec>,
    /// Minimum severity of the structured stderr log.
    pub log_level: mule_obs::log::Severity,
}

impl Default for ServeOptions {
    fn default() -> Self {
        let defaults = mule_serve::ServerConfig::default();
        ServeOptions {
            addr: defaults.addr,
            workers: defaults.workers,
            cache_size: defaults.cache_capacity,
            queue_depth: defaults.queue_depth,
            slow_ms: defaults.slow_request_ms,
            deadline_ms: defaults.deadline.map(|d| d.as_millis() as u64),
            breaker_threshold: defaults.breaker_threshold,
            breaker_cooldown_ms: defaults.breaker_cooldown.as_millis() as u64,
            degraded: defaults.degraded,
            fault_plan: None,
            fault_seed: 7,
            debug_endpoints: defaults.debug_endpoints,
            trace_sample: defaults.trace_sample_rate,
            slo: None,
            log_level: mule_obs::log::Severity::Info,
        }
    }
}

/// Options of the `loadgen` subcommand (the server load benchmark).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenOptions {
    /// Server address to fire at.
    pub addr: String,
    /// Total requests across all connections.
    pub requests: usize,
    /// Concurrent connections.
    pub connections: usize,
    /// Distinct scenario specs rotated through (controls the expected
    /// cache hit rate).
    pub spec_pool: usize,
    /// Targets of the base spec.
    pub targets: usize,
    /// Mules of the base spec.
    pub mules: usize,
    /// Base seed (request *i* uses `seed + (i mod spec_pool)`).
    pub seed: u64,
    /// Planner of the base spec.
    pub planner: PlannerChoice,
    /// Optional path of the JSON artefact (`BENCH_server.json`).
    pub json_path: Option<String>,
    /// Regression gate: fail when p99 latency exceeds this many
    /// milliseconds.
    pub max_p99_ms: Option<f64>,
    /// Regression gate: fail when throughput falls below this many
    /// requests per second.
    pub min_rps: Option<f64>,
    /// Maximum retries per request after a `503` (0 disables retrying).
    pub retries: u32,
    /// Run until this many seconds elapse instead of a fixed request
    /// count (`--requests` is ignored when set).
    pub duration_s: Option<f64>,
    /// Leading requests whose latencies are excluded from the histogram
    /// (warm-up discard; they still count everywhere else).
    pub warmup: usize,
    /// SLO objectives the report is graded against.
    pub slo: Option<mule_obs::SloSpec>,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        let defaults = mule_serve::LoadgenParams::default();
        LoadgenOptions {
            addr: defaults.addr,
            requests: defaults.requests,
            connections: defaults.connections,
            spec_pool: defaults.spec_pool,
            targets: defaults.base.targets,
            mules: defaults.base.mules,
            seed: defaults.base.seed,
            planner: PlannerChoice::BTctp,
            json_path: None,
            max_p99_ms: None,
            min_rps: None,
            retries: defaults.retry_budget,
            duration_s: None,
            warmup: defaults.warmup,
            slo: None,
        }
    }
}

/// Options of the `chaos` subcommand (the self-checking fault-injection
/// drill; see docs/RELIABILITY.md).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOptions {
    /// Seed of the fault plan's firing decisions (same seed, same faults).
    pub seed: u64,
    /// Requests fired serially at the in-process server.
    pub requests: usize,
    /// Distinct scenario specs rotated through.
    pub spec_pool: usize,
    /// Targets of the base spec.
    pub targets: usize,
    /// Mules of the base spec.
    pub mules: usize,
    /// Planner of the base spec.
    pub planner: PlannerChoice,
    /// Fault plan override (`point=kind[@prob][#limit],...`); the default
    /// mixes panics, delays, evictions and connection faults.
    pub fault_plan: Option<String>,
    /// Per-request compute deadline of the drilled server, milliseconds.
    pub deadline_ms: u64,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            seed: 7,
            requests: 40,
            spec_pool: 4,
            targets: 10,
            mules: 4,
            planner: PlannerChoice::BTctp,
            fault_plan: None,
            deadline_ms: 800,
        }
    }
}

/// A parsed `patrolctl` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum CliCommand {
    /// Print usage information.
    Help,
    /// Render the scenario and the planned route as ASCII art.
    Render(CliOptions),
    /// Print the plan-response JSON for a scenario — byte-identical to
    /// what `serve` answers on `POST /v1/plan` for the same spec.
    Plan(CliOptions),
    /// Simulate one planner and print its metric reports.
    Simulate(CliOptions),
    /// Run every planner on the same scenario and print a comparison table.
    Compare(CliOptions),
    /// Run a seeded disruption scenario with online replanning and print
    /// the per-phase delay summary.
    Dynamics(DynamicsOptions),
    /// Run a parallel replication sweep over a parameter grid and print
    /// the aggregated statistics table.
    Sweep(SweepOptions),
    /// Benchmark the tour engine (exact vs. candidate-list search) and
    /// optionally write the tracked `BENCH_tours.json` artefact.
    BenchTours(BenchToursOptions),
    /// Benchmark road routing (Dijkstra vs. A* vs. ALT) and optionally
    /// write the tracked `BENCH_routes.json` artefact.
    BenchRoutes(BenchRoutesOptions),
    /// Benchmark construction memory at scale (matrix-free vs.
    /// matrix-backed) and optionally write the tracked `BENCH_scale.json`
    /// artefact.
    BenchScale(BenchScaleOptions),
    /// Run the planning service daemon (blocks forever).
    Serve(ServeOptions),
    /// Fire concurrent requests at a running server and optionally write
    /// the tracked `BENCH_server.json` artefact.
    Loadgen(LoadgenOptions),
    /// Run the self-checking fault-injection drill: boot an in-process
    /// server with an armed fault plan and verify every degraded response
    /// is well-formed, every success byte-identical, and the firing
    /// sequence reproducible.
    Chaos(ChaosOptions),
}

/// Errors produced by the argument parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// No subcommand was given.
    MissingCommand,
    /// The subcommand is not recognised.
    UnknownCommand(String),
    /// A flag is not recognised.
    UnknownFlag(String),
    /// A flag is missing its value.
    MissingValue(String),
    /// A flag's value could not be parsed.
    InvalidValue {
        /// The offending flag.
        flag: String,
        /// The value that failed to parse.
        value: String,
    },
    /// A flag was given that only has an effect alongside another flag
    /// (e.g. `--knn` without `--search candidates`). Erroring beats
    /// silently ignoring the user's knob.
    RequiresFlag {
        /// The offending flag.
        flag: String,
        /// The flag (and value) it requires.
        requires: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingCommand => write!(f, "missing subcommand (try `patrolctl help`)"),
            CliError::UnknownCommand(c) => write!(f, "unknown subcommand `{c}`"),
            CliError::UnknownFlag(flag) => write!(f, "unknown flag `{flag}`"),
            CliError::MissingValue(flag) => write!(f, "flag `{flag}` is missing a value"),
            CliError::InvalidValue { flag, value } => {
                write!(f, "invalid value `{value}` for flag `{flag}`")
            }
            CliError::RequiresFlag { flag, requires } => {
                write!(f, "flag `{flag}` requires `{requires}`")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// The usage text printed by `patrolctl help`.
pub const USAGE: &str = "\
patrolctl — data-mule patrolling toolkit (B-TCTP / W-TCTP / RW-TCTP)

USAGE:
    patrolctl <render|plan|simulate|compare|dynamics|sweep|bench-tours|bench-routes|bench-scale|serve|loadgen|chaos|help> [flags]

FLAGS (scenario subcommands):
    --targets N        number of targets               [default: 10]
    --mules N          number of data mules            [default: 4]
    --seed S           scenario seed                   [default: 1]
    --vips N           number of VIP targets           [default: 0]
    --vip-weight W     weight of each VIP              [default: 2]
    --recharge         add a recharge station
    --planner P        b-tctp | shortest | balancing | rw-tctp | chb | sweep | random
    --search M         tour search: exact | candidates | auto  [default: auto]
    --metric M         travel metric: euclidean | road | road-grid | road-planar
                       (road scenarios snap targets/sink to the network and
                       plan + simulate over shortest road paths)
    --knn K            candidate-list width (only with --search candidates)
    --horizon SECONDS  simulation horizon              [default: 40000]
    --svg FILE         write the plan as an SVG file   (simulate)
    --csv PREFIX       write visit/mule CSV traces     (simulate)
    --width CHARS      ASCII canvas width              (render, default 72)
    --trace-out FILE   write the run's span trace as Chrome trace_event
                       JSON (open in about:tracing or ui.perfetto.dev)
    --profile          append a per-span self-time profile table

FLAGS (dynamics only — all disruptions are seeded by --seed):
    --fail-targets N     targets failing mid-run        [default: 1]
    --recover-after S    failed targets recover after S seconds
    --late-targets N     targets arriving late          [default: 0]
    --breakdowns N       mules breaking down            [default: 1]
    --speed-windows N    reduced-speed windows          [default: 0]
    --speed-factor F     speed multiplier in windows    [default: 0.5]
    --no-replan          keep the initial plan through every disruption

FLAGS (sweep only — the grid is the cartesian product of the axes):
    --seeds LIST         seed axis, comma-separated     [default: --seed]
    --mule-counts LIST   fleet-size axis                [default: --mules]
    --speeds LIST        mule speed axis, m/s           [default: 2]
    --disruptions LIST   none | failures | breakdowns | mixed  [default: none]
    --replicas N         replications per cell          [default: 8]
    --workers N          worker threads (default: MULE_PAR_WORKERS or all cores)
    --csv FILE           write the aggregated statistics as CSV

FLAGS (serve only — the planning-service daemon, see docs/SERVER.md):
    --addr HOST:PORT     bind address                   [default: 127.0.0.1:7878]
    --workers N          connection-handler threads     [default: 4]
    --cache-size N       plan-cache entries (0 = off)   [default: 128]
    --queue-depth N      concurrent connections before 503  [default: 64]
    --slow-ms MS         emit a serve.slow_request log event for requests
                         slower than MS ms (trace-id correlated; off by default)
    --deadline-ms MS     per-request read/compute deadline (504 beyond it)
    --breaker K          open a route after K consecutive compute
                         panics/timeouts (fast 503 until the probe closes it)
    --breaker-cooldown-ms MS   cooldown before the half-open probe [default: 1000]
    --degraded           serve last-good (stale) bytes instead of 5xx
                         where possible (X-Cache: stale)
    --fault-plan SPEC    arm a fault plan: point=kind[@prob][#limit],...
                         (kinds: delay:MS | panic | io | evict; see
                         docs/RELIABILITY.md for the fault-point registry)
    --fault-seed S       seed of the plan's firing decisions [default: 7]
    --debug-endpoints    expose the read-only GET /debug/* introspection
                         endpoints (traces, requests, profile, alloc,
                         events; see docs/SERVER.md)
    --trace-sample R     keep this fraction of request traces in the debug
                         ring (0..=1, deterministic head sampling; slow and
                         5xx requests always kept)  [default: 0.01]
    --slo SPEC           track SLO burn rates on /metrics:
                         p99_ms=MS,availability=PCT (either optional)
    --log-level L        structured-log stderr severity floor:
                         debug | info | warn | error   [default: info]

FLAGS (loadgen only — the tracked server load benchmark):
    --addr HOST:PORT     server to fire at              [default: 127.0.0.1:7878]
    --requests N         total requests                 [default: 1000]
    --connections M      concurrent connections         [default: 4]
    --spec-pool K        distinct specs rotated through [default: 4]
    --targets/--mules/--seed/--planner   base spec      (as above)
    --json FILE          write the report as JSON (BENCH_server.json)
    --max-p99 MS         fail when p99 latency exceeds MS milliseconds
    --min-rps R          fail when throughput falls below R req/s
    --retries N          retry budget per request on 503 (seeded jittered
                         backoff honouring Retry-After) [default: 3]
    --duration-s S       run for S seconds instead of a fixed request count
                         (--requests is ignored)
    --warmup K           discard the first K requests' latencies from the
                         histogram (steady-state percentiles) [default: 0]
    --slo SPEC           grade the report: p99_ms=MS,availability=PCT
                         (verdicts land in BENCH_server.json; informational,
                         the hard gates stay --max-p99/--min-rps)

FLAGS (chaos only — the self-checking fault-injection drill):
    --seed S             fault-plan seed: same seed, same firing sequence
                         [default: 7]
    --requests N         serial requests against the drilled server [default: 40]
    --spec-pool K        distinct specs rotated through [default: 4]
    --targets/--mules/--planner   base spec (as above)
    --fault-plan SPEC    override the default mixed fault plan
    --deadline-ms MS     compute deadline of the drilled server [default: 800]

FLAGS (bench-tours only — the tracked tour-engine benchmark):
    --sizes LIST         instance sizes                 [default: 50,200,1000,5000]
    --seed S             topology seed                  [default: 42]
    --knn K              candidate-list width           [default: 10]
    --exact-cap N        largest size timing the exact pipeline  [default: 1000]
    --samples N          timed repetitions (min is kept) [default: 3]
    --json FILE          write the benchmark report as JSON
    --max-ratio R        fail when candidates/exact tour length exceeds R
    --overhead-gate R    fail when tracing overhead (traced/untraced time
                         at the largest size) exceeds R   (CI pins 1.05)
    --trace-out FILE     write a Chrome trace of one traced candidates run
    --profile            append that run's self-time profile table

FLAGS (bench-routes only — the tracked road-routing benchmark):
    --sizes LIST         network node counts            [default: 1000,10000]
    --seed S             network + query seed           [default: 42]
    --queries N          point-to-point queries per flavour  [default: 200]
    --landmarks K        ALT landmark count             [default: 8]
    --json FILE          write the benchmark report as JSON (BENCH_routes.json)
    --min-speedup R      fail when ALT speedup over Dijkstra falls below R
                         at the largest network size

FLAGS (bench-scale only — the tracked memory-scale benchmark):
    --sizes LIST         instance sizes                 [default: 10000,100000]
    --seed S             topology seed                  [default: 42]
    --knn K              candidate-list width           [default: 10]
    --matrix-cap N       largest size running the O(n²) matrix-backed
                         flavour (8·n² bytes)           [default: 10000]
    --samples N          timed repetitions (min is kept) [default: 3]
    --json FILE          write the benchmark report as JSON (BENCH_scale.json)
    --max-bytes-per-target B   fail when matrix-free peak live bytes per
                         target exceed B at any size
    --max-ratio R        fail when matrix-free/matrix-backed tour length
                         exceeds R where both ran
    (gates fail *after* the artefact is written, like bench-tours)

EXAMPLES:
    patrolctl dynamics --targets 12 --mules 4 --seed 7 \\
        --fail-targets 1 --breakdowns 1 --recover-after 8000
    patrolctl sweep --targets 12 --seeds 1,2,3,4 --mule-counts 2,4 \\
        --disruptions none,mixed --replicas 20 --csv sweep.csv
    patrolctl bench-tours --sizes 50,200,1000 --json BENCH_tours.json \\
        --max-ratio 1.02
    patrolctl plan --targets 12 --mules 3 --metric road
    patrolctl bench-routes --sizes 1000,10000 --json BENCH_routes.json \\
        --min-speedup 3.0
    patrolctl bench-scale --sizes 10000,100000 --json BENCH_scale.json \\
        --max-bytes-per-target 4096 --max-ratio 1.05
    patrolctl serve --addr 127.0.0.1:7878 --workers 4 --cache-size 128
    patrolctl serve --deadline-ms 500 --breaker 3 --degraded
    patrolctl serve --debug-endpoints --slo p99_ms=250,availability=99.9
    patrolctl loadgen --requests 1000 --connections 4 \\
        --json BENCH_server.json --max-p99 250 --min-rps 50
    patrolctl loadgen --duration-s 30 --warmup 100 \\
        --slo p99_ms=250,availability=99 --json BENCH_server.json
    patrolctl chaos --seed 7 --requests 40
";

fn parse_flag<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, CliError> {
    value.parse::<T>().map_err(|_| CliError::InvalidValue {
        flag: flag.to_string(),
        value: value.to_string(),
    })
}

/// Parses a non-empty comma-separated list ("1,2,3").
fn parse_list<T: std::str::FromStr>(flag: &str, value: &str) -> Result<Vec<T>, CliError> {
    let items: Vec<T> = value
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(|p| parse_flag(flag, p))
        .collect::<Result<_, _>>()?;
    if items.is_empty() {
        return Err(CliError::InvalidValue {
            flag: flag.to_string(),
            value: value.to_string(),
        });
    }
    Ok(items)
}

/// Parses the flags of `bench-tours`, which shares no scenario flags with
/// the other subcommands.
fn parse_bench_tours(args: &[String]) -> Result<CliCommand, CliError> {
    let mut options = BenchToursOptions::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take_value = || -> Result<String, CliError> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| CliError::MissingValue(flag.to_string()))
        };
        match flag {
            "--sizes" => options.sizes = parse_list(flag, &take_value()?)?,
            "--seed" => options.seed = parse_flag(flag, &take_value()?)?,
            "--knn" => options.k = parse_flag::<usize>(flag, &take_value()?)?.max(1),
            "--exact-cap" => options.exact_cap = parse_flag(flag, &take_value()?)?,
            "--samples" => options.samples = parse_flag::<usize>(flag, &take_value()?)?.max(1),
            "--json" => options.json_path = Some(take_value()?),
            "--max-ratio" => options.max_ratio = Some(parse_flag(flag, &take_value()?)?),
            "--overhead-gate" => options.overhead_gate = Some(parse_flag(flag, &take_value()?)?),
            "--trace-out" => options.trace_out = Some(take_value()?),
            "--profile" => options.profile = true,
            other => return Err(CliError::UnknownFlag(other.to_string())),
        }
        i += 1;
    }
    Ok(CliCommand::BenchTours(options))
}

/// Parses the flags of `bench-routes`, which shares no scenario flags with
/// the other subcommands.
fn parse_bench_routes(args: &[String]) -> Result<CliCommand, CliError> {
    let mut options = BenchRoutesOptions::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take_value = || -> Result<String, CliError> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| CliError::MissingValue(flag.to_string()))
        };
        match flag {
            "--sizes" => options.sizes = parse_list(flag, &take_value()?)?,
            "--seed" => options.seed = parse_flag(flag, &take_value()?)?,
            "--queries" => options.queries = parse_flag::<usize>(flag, &take_value()?)?.max(1),
            "--landmarks" => options.landmarks = parse_flag::<usize>(flag, &take_value()?)?.max(1),
            "--json" => options.json_path = Some(take_value()?),
            "--min-speedup" => options.min_speedup = Some(parse_flag(flag, &take_value()?)?),
            other => return Err(CliError::UnknownFlag(other.to_string())),
        }
        i += 1;
    }
    Ok(CliCommand::BenchRoutes(options))
}

/// Parses the flags of `bench-scale`, which shares no scenario flags
/// with the other subcommands.
fn parse_bench_scale(args: &[String]) -> Result<CliCommand, CliError> {
    let mut options = BenchScaleOptions::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take_value = || -> Result<String, CliError> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| CliError::MissingValue(flag.to_string()))
        };
        match flag {
            "--sizes" => options.sizes = parse_list(flag, &take_value()?)?,
            "--seed" => options.seed = parse_flag(flag, &take_value()?)?,
            "--knn" => options.k = parse_flag::<usize>(flag, &take_value()?)?.max(1),
            "--matrix-cap" => options.matrix_cap = parse_flag(flag, &take_value()?)?,
            "--samples" => options.samples = parse_flag::<usize>(flag, &take_value()?)?.max(1),
            "--json" => options.json_path = Some(take_value()?),
            "--max-bytes-per-target" => {
                options.max_bytes_per_target = Some(parse_flag(flag, &take_value()?)?)
            }
            "--max-ratio" => options.max_ratio = Some(parse_flag(flag, &take_value()?)?),
            other => return Err(CliError::UnknownFlag(other.to_string())),
        }
        i += 1;
    }
    Ok(CliCommand::BenchScale(options))
}

/// Parses an `--slo` objective spec via [`mule_obs::SloSpec::parse`].
fn parse_slo(flag: &str, value: &str) -> Result<mule_obs::SloSpec, CliError> {
    mule_obs::SloSpec::parse(value).map_err(|_| CliError::InvalidValue {
        flag: flag.to_string(),
        value: value.to_string(),
    })
}

/// Parses a `--log-level` severity name.
fn parse_log_level(flag: &str, value: &str) -> Result<mule_obs::log::Severity, CliError> {
    mule_obs::log::Severity::parse(value).ok_or_else(|| CliError::InvalidValue {
        flag: flag.to_string(),
        value: value.to_string(),
    })
}

/// Parses the flags of `serve`.
fn parse_serve(args: &[String]) -> Result<CliCommand, CliError> {
    let mut options = ServeOptions::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take_value = || -> Result<String, CliError> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| CliError::MissingValue(flag.to_string()))
        };
        match flag {
            "--addr" => options.addr = take_value()?,
            "--workers" => options.workers = parse_flag::<usize>(flag, &take_value()?)?.max(1),
            "--cache-size" => options.cache_size = parse_flag(flag, &take_value()?)?,
            "--queue-depth" => {
                options.queue_depth = parse_flag::<usize>(flag, &take_value()?)?.max(1)
            }
            "--slow-ms" => options.slow_ms = Some(parse_flag(flag, &take_value()?)?),
            "--deadline-ms" => {
                options.deadline_ms = Some(parse_flag::<u64>(flag, &take_value()?)?.max(1))
            }
            "--breaker" => {
                options.breaker_threshold = Some(parse_flag::<usize>(flag, &take_value()?)?.max(1))
            }
            "--breaker-cooldown-ms" => {
                options.breaker_cooldown_ms = parse_flag::<u64>(flag, &take_value()?)?.max(1)
            }
            "--degraded" => options.degraded = true,
            "--fault-plan" => options.fault_plan = Some(take_value()?),
            "--fault-seed" => options.fault_seed = parse_flag(flag, &take_value()?)?,
            "--debug-endpoints" => options.debug_endpoints = true,
            "--trace-sample" => {
                let value = take_value()?;
                let rate = parse_flag::<f64>(flag, &value)?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(CliError::InvalidValue {
                        flag: flag.to_string(),
                        value,
                    });
                }
                options.trace_sample = rate;
            }
            "--slo" => options.slo = Some(parse_slo(flag, &take_value()?)?),
            "--log-level" => options.log_level = parse_log_level(flag, &take_value()?)?,
            other => return Err(CliError::UnknownFlag(other.to_string())),
        }
        i += 1;
    }
    Ok(CliCommand::Serve(options))
}

/// Parses the flags of `chaos`.
fn parse_chaos(args: &[String]) -> Result<CliCommand, CliError> {
    let mut options = ChaosOptions::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take_value = || -> Result<String, CliError> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| CliError::MissingValue(flag.to_string()))
        };
        match flag {
            "--seed" => options.seed = parse_flag(flag, &take_value()?)?,
            "--requests" => options.requests = parse_flag::<usize>(flag, &take_value()?)?.max(1),
            "--spec-pool" => options.spec_pool = parse_flag::<usize>(flag, &take_value()?)?.max(1),
            "--targets" => options.targets = parse_flag(flag, &take_value()?)?,
            "--mules" => options.mules = parse_flag(flag, &take_value()?)?,
            "--planner" => options.planner = PlannerChoice::parse(&take_value()?)?,
            "--fault-plan" => options.fault_plan = Some(take_value()?),
            "--deadline-ms" => {
                options.deadline_ms = parse_flag::<u64>(flag, &take_value()?)?.max(1)
            }
            other => return Err(CliError::UnknownFlag(other.to_string())),
        }
        i += 1;
    }
    Ok(CliCommand::Chaos(options))
}

/// Parses the flags of `loadgen`.
fn parse_loadgen(args: &[String]) -> Result<CliCommand, CliError> {
    let mut options = LoadgenOptions::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take_value = || -> Result<String, CliError> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| CliError::MissingValue(flag.to_string()))
        };
        match flag {
            "--addr" => options.addr = take_value()?,
            "--requests" => options.requests = parse_flag::<usize>(flag, &take_value()?)?.max(1),
            "--connections" => {
                options.connections = parse_flag::<usize>(flag, &take_value()?)?.max(1)
            }
            "--spec-pool" => options.spec_pool = parse_flag::<usize>(flag, &take_value()?)?.max(1),
            "--targets" => options.targets = parse_flag(flag, &take_value()?)?,
            "--mules" => options.mules = parse_flag(flag, &take_value()?)?,
            "--seed" => options.seed = parse_flag(flag, &take_value()?)?,
            "--planner" => options.planner = PlannerChoice::parse(&take_value()?)?,
            "--json" => options.json_path = Some(take_value()?),
            "--max-p99" => options.max_p99_ms = Some(parse_flag(flag, &take_value()?)?),
            "--min-rps" => options.min_rps = Some(parse_flag(flag, &take_value()?)?),
            "--retries" => options.retries = parse_flag(flag, &take_value()?)?,
            "--duration-s" => {
                let value = take_value()?;
                let seconds = parse_flag::<f64>(flag, &value)?;
                if seconds.is_nan() || seconds <= 0.0 {
                    return Err(CliError::InvalidValue {
                        flag: flag.to_string(),
                        value,
                    });
                }
                options.duration_s = Some(seconds);
            }
            "--warmup" => options.warmup = parse_flag(flag, &take_value()?)?,
            "--slo" => options.slo = Some(parse_slo(flag, &take_value()?)?),
            other => return Err(CliError::UnknownFlag(other.to_string())),
        }
        i += 1;
    }
    Ok(CliCommand::Loadgen(options))
}

/// Parses the argument list (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<CliCommand, CliError> {
    let command = args.first().ok_or(CliError::MissingCommand)?;
    if matches!(command.as_str(), "help" | "--help" | "-h") {
        return Ok(CliCommand::Help);
    }
    if command == "bench-tours" {
        return parse_bench_tours(&args[1..]);
    }
    if command == "bench-routes" {
        return parse_bench_routes(&args[1..]);
    }
    if command == "bench-scale" {
        return parse_bench_scale(&args[1..]);
    }
    if command == "serve" {
        return parse_serve(&args[1..]);
    }
    if command == "loadgen" {
        return parse_loadgen(&args[1..]);
    }
    if command == "chaos" {
        return parse_chaos(&args[1..]);
    }
    let is_dynamics = command == "dynamics";
    let is_sweep = command == "sweep";

    let mut options = CliOptions::default();
    let mut dynamics = DynamicsOptions::default();
    let mut sweep = SweepOptions::default();
    // Axes default to the shared `--seed` / `--mules` values unless given
    // explicitly; resolved after the flag loop.
    let mut sweep_seeds: Option<Vec<u64>> = None;
    let mut sweep_mule_counts: Option<Vec<usize>> = None;
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take_value = || -> Result<String, CliError> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| CliError::MissingValue(flag.to_string()))
        };
        match flag {
            "--targets" => options.targets = parse_flag(flag, &take_value()?)?,
            "--mules" => options.mules = parse_flag(flag, &take_value()?)?,
            "--seed" => options.seed = parse_flag(flag, &take_value()?)?,
            "--vips" => options.vips = parse_flag(flag, &take_value()?)?,
            "--vip-weight" => options.vip_weight = parse_flag(flag, &take_value()?)?,
            "--horizon" => options.horizon_s = parse_flag(flag, &take_value()?)?,
            "--width" => options.canvas_width = parse_flag(flag, &take_value()?)?,
            "--planner" => options.planner = PlannerChoice::parse(&take_value()?)?,
            "--search" => options.search = SearchChoice::parse(&take_value()?)?,
            "--metric" => options.metric = parse_metric(&take_value()?)?,
            "--knn" => options.knn = Some(parse_flag::<usize>(flag, &take_value()?)?.max(1)),
            "--svg" => options.svg_path = Some(take_value()?),
            "--csv" => options.csv_prefix = Some(take_value()?),
            "--recharge" => options.recharge = true,
            "--trace-out" => options.trace_out = Some(take_value()?),
            "--profile" => options.profile = true,
            "--fail-targets" if is_dynamics => {
                dynamics.fail_targets = parse_flag(flag, &take_value()?)?
            }
            "--recover-after" if is_dynamics => {
                dynamics.recover_after_s = Some(parse_flag(flag, &take_value()?)?)
            }
            "--late-targets" if is_dynamics => {
                dynamics.late_targets = parse_flag(flag, &take_value()?)?
            }
            "--breakdowns" if is_dynamics => {
                dynamics.breakdowns = parse_flag(flag, &take_value()?)?
            }
            "--speed-windows" if is_dynamics => {
                dynamics.speed_windows = parse_flag(flag, &take_value()?)?
            }
            "--speed-factor" if is_dynamics => {
                dynamics.speed_factor = parse_flag(flag, &take_value()?)?
            }
            "--no-replan" if is_dynamics => dynamics.no_replan = true,
            "--seeds" if is_sweep => sweep_seeds = Some(parse_list(flag, &take_value()?)?),
            "--mule-counts" if is_sweep => {
                sweep_mule_counts = Some(parse_list(flag, &take_value()?)?)
            }
            "--speeds" if is_sweep => sweep.speeds = parse_list(flag, &take_value()?)?,
            "--disruptions" if is_sweep => sweep.disruptions = parse_list(flag, &take_value()?)?,
            "--replicas" if is_sweep => sweep.replicas = parse_flag(flag, &take_value()?)?,
            "--workers" if is_sweep => {
                sweep.workers = Some(parse_flag::<usize>(flag, &take_value()?)?).filter(|&n| n > 0)
            }
            other => return Err(CliError::UnknownFlag(other.to_string())),
        }
        i += 1;
    }

    // RW-TCTP needs a recharge station; turn it on implicitly so the obvious
    // invocation works.
    if options.planner == PlannerChoice::RwTctp {
        options.recharge = true;
    }

    // `--knn` tunes the candidate-list width, which only exists under
    // `--search candidates` (auto resolves its own default width above the
    // threshold). Silently discarding the user's knob would be worse than
    // rejecting it.
    if options.knn.is_some() && options.search != SearchChoice::Candidates {
        return Err(CliError::RequiresFlag {
            flag: "--knn".into(),
            requires: "--search candidates".into(),
        });
    }

    match command.as_str() {
        "render" => Ok(CliCommand::Render(options)),
        "plan" => Ok(CliCommand::Plan(options)),
        "simulate" => Ok(CliCommand::Simulate(options)),
        "compare" => Ok(CliCommand::Compare(options)),
        "dynamics" => {
            dynamics.base = options;
            Ok(CliCommand::Dynamics(dynamics))
        }
        "sweep" => {
            sweep.seeds = sweep_seeds.unwrap_or_else(|| vec![options.seed]);
            sweep.mule_counts = sweep_mule_counts.unwrap_or_else(|| vec![options.mules]);
            sweep.base = options;
            Ok(CliCommand::Sweep(sweep))
        }
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn help_and_missing_command() {
        assert_eq!(parse_args(&argv("help")).unwrap(), CliCommand::Help);
        assert_eq!(parse_args(&argv("--help")).unwrap(), CliCommand::Help);
        assert_eq!(parse_args(&[]).unwrap_err(), CliError::MissingCommand);
        assert!(matches!(
            parse_args(&argv("frobnicate")).unwrap_err(),
            CliError::UnknownCommand(_)
        ));
    }

    #[test]
    fn defaults_apply_when_no_flags_given() {
        let CliCommand::Simulate(opts) = parse_args(&argv("simulate")).unwrap() else {
            panic!("expected simulate");
        };
        assert_eq!(opts, CliOptions::default());
    }

    #[test]
    fn flags_override_defaults() {
        let cmd = parse_args(&argv(
            "simulate --targets 25 --mules 6 --seed 9 --vips 3 --vip-weight 4 \
             --planner balancing --horizon 12345 --recharge",
        ))
        .unwrap();
        let CliCommand::Simulate(opts) = cmd else {
            panic!()
        };
        assert_eq!(opts.targets, 25);
        assert_eq!(opts.mules, 6);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.vips, 3);
        assert_eq!(opts.vip_weight, 4);
        assert_eq!(opts.planner, PlannerChoice::WTctpBalancing);
        assert_eq!(opts.horizon_s, 12345.0);
        assert!(opts.recharge);
    }

    #[test]
    fn planner_names_parse_case_insensitively() {
        assert_eq!(
            PlannerChoice::parse("B-TCTP").unwrap(),
            PlannerChoice::BTctp
        );
        assert_eq!(PlannerChoice::parse("ChB").unwrap(), PlannerChoice::Chb);
        assert_eq!(
            PlannerChoice::parse("rw-tctp").unwrap(),
            PlannerChoice::RwTctp
        );
        assert!(PlannerChoice::parse("nonsense").is_err());
    }

    #[test]
    fn rw_tctp_implies_a_recharge_station() {
        let CliCommand::Simulate(opts) = parse_args(&argv("simulate --planner rw-tctp")).unwrap()
        else {
            panic!()
        };
        assert!(opts.recharge);
    }

    #[test]
    fn malformed_and_unknown_flags_are_reported() {
        assert!(matches!(
            parse_args(&argv("render --bogus 1")).unwrap_err(),
            CliError::UnknownFlag(_)
        ));
        assert!(matches!(
            parse_args(&argv("render --targets")).unwrap_err(),
            CliError::MissingValue(_)
        ));
        assert!(matches!(
            parse_args(&argv("render --targets abc")).unwrap_err(),
            CliError::InvalidValue { .. }
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(CliError::MissingCommand.to_string().contains("subcommand"));
        assert!(CliError::UnknownFlag("--x".into())
            .to_string()
            .contains("--x"));
        assert!(CliError::InvalidValue {
            flag: "--targets".into(),
            value: "abc".into()
        }
        .to_string()
        .contains("abc"));
        assert!(USAGE.contains("patrolctl"));
    }

    #[test]
    fn dynamics_defaults_apply_when_no_flags_given() {
        let CliCommand::Dynamics(opts) = parse_args(&argv("dynamics")).unwrap() else {
            panic!("expected dynamics");
        };
        assert_eq!(opts, DynamicsOptions::default());
        assert_eq!(opts.fail_targets, 1);
        assert_eq!(opts.breakdowns, 1);
        assert_eq!(opts.late_targets, 0);
        assert!(opts.recover_after_s.is_none());
        assert!(!opts.no_replan);
    }

    #[test]
    fn dynamics_flags_parse_alongside_shared_flags() {
        let cmd = parse_args(&argv(
            "dynamics --targets 12 --mules 5 --seed 9 --fail-targets 2 \
             --recover-after 8000 --late-targets 1 --breakdowns 2 \
             --speed-windows 1 --speed-factor 0.25 --no-replan",
        ))
        .unwrap();
        let CliCommand::Dynamics(opts) = cmd else {
            panic!()
        };
        assert_eq!(opts.base.targets, 12);
        assert_eq!(opts.base.mules, 5);
        assert_eq!(opts.base.seed, 9);
        assert_eq!(opts.fail_targets, 2);
        assert_eq!(opts.recover_after_s, Some(8000.0));
        assert_eq!(opts.late_targets, 1);
        assert_eq!(opts.breakdowns, 2);
        assert_eq!(opts.speed_windows, 1);
        assert_eq!(opts.speed_factor, 0.25);
        assert!(opts.no_replan);
    }

    #[test]
    fn dynamics_flags_are_rejected_on_other_subcommands() {
        assert!(matches!(
            parse_args(&argv("simulate --fail-targets 2")).unwrap_err(),
            CliError::UnknownFlag(f) if f == "--fail-targets"
        ));
        assert!(matches!(
            parse_args(&argv("render --no-replan")).unwrap_err(),
            CliError::UnknownFlag(_)
        ));
    }

    #[test]
    fn dynamics_usage_is_documented() {
        assert!(USAGE.contains("dynamics"));
        assert!(USAGE.contains("--fail-targets"));
        assert!(USAGE.contains("--no-replan"));
        assert!(
            USAGE.contains("patrolctl dynamics"),
            "usage shows an example"
        );
    }

    #[test]
    fn sweep_defaults_derive_axes_from_shared_flags() {
        let CliCommand::Sweep(opts) = parse_args(&argv("sweep")).unwrap() else {
            panic!("expected sweep");
        };
        assert_eq!(opts, SweepOptions::default());
        assert_eq!(opts.seeds, vec![1]);
        assert_eq!(opts.mule_counts, vec![4]);
        assert_eq!(opts.disruptions, vec![DisruptionPreset::None]);
        assert_eq!(opts.replicas, 8);
        assert!(opts.workers.is_none());

        // `--seed` / `--mules` seed the axes when the axis flags are absent.
        let CliCommand::Sweep(opts) = parse_args(&argv("sweep --seed 9 --mules 6")).unwrap() else {
            panic!()
        };
        assert_eq!(opts.seeds, vec![9]);
        assert_eq!(opts.mule_counts, vec![6]);
    }

    #[test]
    fn sweep_axis_flags_parse_comma_lists() {
        let cmd = parse_args(&argv(
            "sweep --targets 12 --seeds 1,2,3 --mule-counts 2,4 --speeds 1.5,3 \
             --disruptions none,failures,mixed --replicas 5 --workers 2 --csv out.csv",
        ))
        .unwrap();
        let CliCommand::Sweep(opts) = cmd else {
            panic!()
        };
        assert_eq!(opts.base.targets, 12);
        assert_eq!(opts.seeds, vec![1, 2, 3]);
        assert_eq!(opts.mule_counts, vec![2, 4]);
        assert_eq!(opts.speeds, vec![1.5, 3.0]);
        assert_eq!(
            opts.disruptions,
            vec![
                DisruptionPreset::None,
                DisruptionPreset::Failures,
                DisruptionPreset::Mixed
            ]
        );
        assert_eq!(opts.replicas, 5);
        assert_eq!(opts.workers, Some(2));
        assert_eq!(opts.base.csv_prefix.as_deref(), Some("out.csv"));
    }

    #[test]
    fn sweep_rejects_malformed_lists_and_unknown_presets() {
        assert!(matches!(
            parse_args(&argv("sweep --seeds 1,x,3")).unwrap_err(),
            CliError::InvalidValue { flag, .. } if flag == "--seeds"
        ));
        assert!(matches!(
            parse_args(&argv("sweep --disruptions tornado")).unwrap_err(),
            CliError::InvalidValue { flag, .. } if flag == "--disruptions"
        ));
        assert!(matches!(
            parse_args(&argv("sweep --speeds ,")).unwrap_err(),
            CliError::InvalidValue { flag, .. } if flag == "--speeds"
        ));
        // Empty lists report the same error on every axis.
        assert!(matches!(
            parse_args(&argv("sweep --disruptions ,")).unwrap_err(),
            CliError::InvalidValue { flag, .. } if flag == "--disruptions"
        ));
        // `--workers 0` means "auto", not zero threads.
        let CliCommand::Sweep(opts) = parse_args(&argv("sweep --workers 0")).unwrap() else {
            panic!()
        };
        assert!(opts.workers.is_none());
    }

    #[test]
    fn sweep_flags_are_rejected_on_other_subcommands() {
        assert!(matches!(
            parse_args(&argv("simulate --seeds 1,2")).unwrap_err(),
            CliError::UnknownFlag(f) if f == "--seeds"
        ));
        assert!(matches!(
            parse_args(&argv("dynamics --replicas 3")).unwrap_err(),
            CliError::UnknownFlag(_)
        ));
    }

    #[test]
    fn disruption_preset_names_parse_case_insensitively() {
        assert_eq!(
            DisruptionPreset::parse("NONE").unwrap(),
            DisruptionPreset::None
        );
        assert_eq!(
            DisruptionPreset::parse("Failures").unwrap(),
            DisruptionPreset::Failures
        );
        assert_eq!(
            DisruptionPreset::parse("breakdown").unwrap(),
            DisruptionPreset::Breakdowns
        );
        assert!(DisruptionPreset::parse("everything").is_err());
    }

    #[test]
    fn sweep_usage_is_documented() {
        assert!(USAGE.contains("sweep"));
        assert!(USAGE.contains("--mule-counts"));
        assert!(USAGE.contains("--disruptions"));
        assert!(USAGE.contains("patrolctl sweep"), "usage shows an example");
    }

    #[test]
    fn search_flags_parse_on_scenario_subcommands() {
        let CliCommand::Simulate(opts) =
            parse_args(&argv("simulate --search candidates --knn 12")).unwrap()
        else {
            panic!()
        };
        assert_eq!(opts.search, SearchChoice::Candidates);
        assert_eq!(opts.knn, Some(12));
        assert_eq!(
            opts.search.to_mode(opts.knn),
            mule_graph::SearchMode::Candidates(12)
        );

        let CliCommand::Render(opts) = parse_args(&argv("render --search exact")).unwrap() else {
            panic!()
        };
        assert_eq!(opts.search, SearchChoice::Exact);
        assert_eq!(opts.search.to_mode(None), mule_graph::SearchMode::Exact);

        // Default is auto; --knn without --search candidates is rejected
        // (auto would silently ignore it).
        assert_eq!(CliOptions::default().search, SearchChoice::Auto);
        assert!(matches!(
            parse_args(&argv("simulate --knn 5")).unwrap_err(),
            CliError::RequiresFlag { flag, .. } if flag == "--knn"
        ));
        assert!(matches!(
            parse_args(&argv("simulate --search exact --knn 5")).unwrap_err(),
            CliError::RequiresFlag { .. }
        ));
        assert!(CliError::RequiresFlag {
            flag: "--knn".into(),
            requires: "--search candidates".into()
        }
        .to_string()
        .contains("requires"));
        // Flag order does not matter for the pairing.
        assert!(parse_args(&argv("simulate --knn 5 --search candidates")).is_ok());
        assert!(SearchChoice::parse("fuzzy").is_err());
        assert_eq!(
            SearchChoice::parse("CANDIDATES").unwrap(),
            SearchChoice::Candidates
        );
        // A candidates choice without --knn uses the engine default.
        assert_eq!(
            SearchChoice::Candidates.to_mode(None),
            mule_graph::SearchMode::Candidates(mule_graph::chb::DEFAULT_CANDIDATES_K)
        );
    }

    #[test]
    fn bench_tours_defaults_and_flags() {
        let CliCommand::BenchTours(opts) = parse_args(&argv("bench-tours")).unwrap() else {
            panic!("expected bench-tours");
        };
        assert_eq!(opts, BenchToursOptions::default());
        assert_eq!(opts.sizes, vec![50, 200, 1000, 5000]);
        assert_eq!(opts.seed, 42);
        assert_eq!(opts.exact_cap, 1000);
        assert!(opts.json_path.is_none());
        assert!(opts.max_ratio.is_none());

        let cmd = parse_args(&argv(
            "bench-tours --sizes 50,200 --seed 9 --knn 8 --exact-cap 300 \
             --samples 2 --json out.json --max-ratio 1.02",
        ))
        .unwrap();
        let CliCommand::BenchTours(opts) = cmd else {
            panic!()
        };
        assert_eq!(opts.sizes, vec![50, 200]);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.k, 8);
        assert_eq!(opts.exact_cap, 300);
        assert_eq!(opts.samples, 2);
        assert_eq!(opts.json_path.as_deref(), Some("out.json"));
        assert_eq!(opts.max_ratio, Some(1.02));
    }

    #[test]
    fn bench_tours_rejects_scenario_flags_and_bad_values() {
        assert!(matches!(
            parse_args(&argv("bench-tours --targets 10")).unwrap_err(),
            CliError::UnknownFlag(f) if f == "--targets"
        ));
        assert!(matches!(
            parse_args(&argv("bench-tours --sizes 50,x")).unwrap_err(),
            CliError::InvalidValue { flag, .. } if flag == "--sizes"
        ));
        assert!(matches!(
            parse_args(&argv("bench-tours --json")).unwrap_err(),
            CliError::MissingValue(_)
        ));
        // bench flags are rejected elsewhere.
        assert!(matches!(
            parse_args(&argv("simulate --sizes 50")).unwrap_err(),
            CliError::UnknownFlag(_)
        ));
        assert!(USAGE.contains("bench-tours"));
        assert!(USAGE.contains("--max-ratio"));
    }

    #[test]
    fn bench_scale_defaults_and_flags() {
        let CliCommand::BenchScale(opts) = parse_args(&argv("bench-scale")).unwrap() else {
            panic!("expected bench-scale");
        };
        assert_eq!(opts, BenchScaleOptions::default());
        assert_eq!(opts.sizes, vec![10_000, 100_000]);
        assert_eq!(opts.seed, 42);
        assert_eq!(opts.matrix_cap, 10_000);
        assert!(opts.json_path.is_none());
        assert!(opts.max_bytes_per_target.is_none());
        assert!(opts.max_ratio.is_none());

        let cmd = parse_args(&argv(
            "bench-scale --sizes 2000,5000 --seed 9 --knn 8 --matrix-cap 3000 \
             --samples 2 --json BENCH_scale.json --max-bytes-per-target 4096 \
             --max-ratio 1.05",
        ))
        .unwrap();
        let CliCommand::BenchScale(opts) = cmd else {
            panic!()
        };
        assert_eq!(opts.sizes, vec![2000, 5000]);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.k, 8);
        assert_eq!(opts.matrix_cap, 3000);
        assert_eq!(opts.samples, 2);
        assert_eq!(opts.json_path.as_deref(), Some("BENCH_scale.json"));
        assert_eq!(opts.max_bytes_per_target, Some(4096.0));
        assert_eq!(opts.max_ratio, Some(1.05));
    }

    #[test]
    fn bench_scale_rejects_scenario_flags_and_bad_values() {
        assert!(matches!(
            parse_args(&argv("bench-scale --targets 10")).unwrap_err(),
            CliError::UnknownFlag(f) if f == "--targets"
        ));
        assert!(matches!(
            parse_args(&argv("bench-scale --sizes 50,x")).unwrap_err(),
            CliError::InvalidValue { flag, .. } if flag == "--sizes"
        ));
        assert!(matches!(
            parse_args(&argv("bench-scale --max-bytes-per-target")).unwrap_err(),
            CliError::MissingValue(_)
        ));
        assert!(USAGE.contains("bench-scale"));
        assert!(USAGE.contains("--max-bytes-per-target"));
        assert!(USAGE.contains("--matrix-cap"));
    }

    #[test]
    fn metric_flag_parses_on_scenario_subcommands() {
        use mule_workload::MetricSpec;
        assert_eq!(CliOptions::default().metric, MetricSpec::Euclidean);
        let CliCommand::Simulate(opts) = parse_args(&argv("simulate --metric road")).unwrap()
        else {
            panic!()
        };
        assert_eq!(opts.metric, MetricSpec::Road(mule_road::RoadNetKind::Grid));
        let CliCommand::Plan(opts) = parse_args(&argv("plan --metric road-planar")).unwrap() else {
            panic!()
        };
        assert_eq!(
            opts.metric,
            MetricSpec::Road(mule_road::RoadNetKind::Planar)
        );
        let CliCommand::Render(opts) = parse_args(&argv("render --metric EUCLIDEAN")).unwrap()
        else {
            panic!()
        };
        assert_eq!(opts.metric, MetricSpec::Euclidean);
        assert!(matches!(
            parse_args(&argv("simulate --metric warp")).unwrap_err(),
            CliError::InvalidValue { flag, .. } if flag == "--metric"
        ));
        assert!(USAGE.contains("--metric"));
    }

    #[test]
    fn bench_routes_defaults_and_flags() {
        let CliCommand::BenchRoutes(opts) = parse_args(&argv("bench-routes")).unwrap() else {
            panic!("expected bench-routes");
        };
        assert_eq!(opts, BenchRoutesOptions::default());
        assert_eq!(opts.sizes, vec![1000, 10000]);
        assert_eq!(opts.seed, 42);
        assert_eq!(opts.queries, 200);
        assert_eq!(opts.landmarks, 8);
        assert!(opts.json_path.is_none());
        assert!(opts.min_speedup.is_none());

        let cmd = parse_args(&argv(
            "bench-routes --sizes 500,2000 --seed 9 --queries 50 --landmarks 4 \
             --json BENCH_routes.json --min-speedup 3.0",
        ))
        .unwrap();
        let CliCommand::BenchRoutes(opts) = cmd else {
            panic!()
        };
        assert_eq!(opts.sizes, vec![500, 2000]);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.queries, 50);
        assert_eq!(opts.landmarks, 4);
        assert_eq!(opts.json_path.as_deref(), Some("BENCH_routes.json"));
        assert_eq!(opts.min_speedup, Some(3.0));

        assert!(matches!(
            parse_args(&argv("bench-routes --targets 5")).unwrap_err(),
            CliError::UnknownFlag(_)
        ));
        assert!(matches!(
            parse_args(&argv("bench-routes --sizes abc")).unwrap_err(),
            CliError::InvalidValue { .. }
        ));
        assert!(USAGE.contains("bench-routes"));
        assert!(USAGE.contains("--min-speedup"));
    }

    #[test]
    fn plan_shares_the_scenario_flags() {
        let CliCommand::Plan(opts) =
            parse_args(&argv("plan --targets 12 --mules 3 --seed 7 --planner chb")).unwrap()
        else {
            panic!("expected plan");
        };
        assert_eq!(opts.targets, 12);
        assert_eq!(opts.mules, 3);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.planner, PlannerChoice::Chb);
        assert!(USAGE.contains("plan"));
    }

    #[test]
    fn canonical_planner_names_parse_back_to_the_same_choice() {
        for choice in [
            PlannerChoice::BTctp,
            PlannerChoice::WTctpShortest,
            PlannerChoice::WTctpBalancing,
            PlannerChoice::RwTctp,
            PlannerChoice::Chb,
            PlannerChoice::Sweep,
            PlannerChoice::Random,
        ] {
            assert_eq!(
                PlannerChoice::parse(choice.canonical_name()).unwrap(),
                choice,
                "{}",
                choice.canonical_name()
            );
        }
    }

    #[test]
    fn serve_defaults_and_flags() {
        let CliCommand::Serve(opts) = parse_args(&argv("serve")).unwrap() else {
            panic!("expected serve");
        };
        assert_eq!(opts, ServeOptions::default());
        assert_eq!(opts.addr, "127.0.0.1:7878");

        let cmd = parse_args(&argv(
            "serve --addr 0.0.0.0:9000 --workers 8 --cache-size 256 --queue-depth 32",
        ))
        .unwrap();
        let CliCommand::Serve(opts) = cmd else {
            panic!()
        };
        assert_eq!(opts.addr, "0.0.0.0:9000");
        assert_eq!(opts.workers, 8);
        assert_eq!(opts.cache_size, 256);
        assert_eq!(opts.queue_depth, 32);

        // Worker/queue floors: zero would deadlock the daemon.
        let CliCommand::Serve(opts) =
            parse_args(&argv("serve --workers 0 --queue-depth 0")).unwrap()
        else {
            panic!()
        };
        assert_eq!(opts.workers, 1);
        assert_eq!(opts.queue_depth, 1);
        // Cache size zero is a legal "caching off" configuration.
        let CliCommand::Serve(opts) = parse_args(&argv("serve --cache-size 0")).unwrap() else {
            panic!()
        };
        assert_eq!(opts.cache_size, 0);

        assert!(matches!(
            parse_args(&argv("serve --targets 5")).unwrap_err(),
            CliError::UnknownFlag(_)
        ));
        assert!(USAGE.contains("serve"));
        assert!(USAGE.contains("--queue-depth"));
    }

    #[test]
    fn serve_degradation_flags_parse_and_default_off() {
        // Everything off by default: the hardened paths must be opt-in so
        // the golden server bytes stay untouched.
        let defaults = ServeOptions::default();
        assert!(defaults.deadline_ms.is_none());
        assert!(defaults.breaker_threshold.is_none());
        assert!(!defaults.degraded);
        assert!(defaults.fault_plan.is_none());

        let cmd = parse_args(&argv(
            "serve --deadline-ms 500 --breaker 3 --breaker-cooldown-ms 250 --degraded \
             --fault-plan serve.plan=panic@0.2 --fault-seed 99",
        ))
        .unwrap();
        let CliCommand::Serve(opts) = cmd else {
            panic!()
        };
        assert_eq!(opts.deadline_ms, Some(500));
        assert_eq!(opts.breaker_threshold, Some(3));
        assert_eq!(opts.breaker_cooldown_ms, 250);
        assert!(opts.degraded);
        assert_eq!(opts.fault_plan.as_deref(), Some("serve.plan=panic@0.2"));
        assert_eq!(opts.fault_seed, 99);

        // Floors: zero deadlines/thresholds/cooldowns make no sense.
        let CliCommand::Serve(opts) = parse_args(&argv(
            "serve --deadline-ms 0 --breaker 0 --breaker-cooldown-ms 0",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(opts.deadline_ms, Some(1));
        assert_eq!(opts.breaker_threshold, Some(1));
        assert_eq!(opts.breaker_cooldown_ms, 1);
        assert!(USAGE.contains("--fault-plan"));
        assert!(USAGE.contains("--breaker"));
        assert!(USAGE.contains("--degraded"));
    }

    #[test]
    fn serve_telemetry_flags_parse_and_default_off() {
        // Telemetry is opt-in: no debug surface, 1 % sampling, no SLO,
        // info-level logging by default.
        let defaults = ServeOptions::default();
        assert!(!defaults.debug_endpoints);
        assert_eq!(defaults.trace_sample, 0.01);
        assert!(defaults.slo.is_none());
        assert_eq!(defaults.log_level, mule_obs::log::Severity::Info);

        let cmd = parse_args(&argv(
            "serve --debug-endpoints --trace-sample 0.5 \
             --slo p99_ms=250,availability=99.9 --log-level debug",
        ))
        .unwrap();
        let CliCommand::Serve(opts) = cmd else {
            panic!()
        };
        assert!(opts.debug_endpoints);
        assert_eq!(opts.trace_sample, 0.5);
        let slo = opts.slo.unwrap();
        assert_eq!(slo.p99_ms, Some(250.0));
        assert_eq!(slo.availability_pct, Some(99.9));
        assert_eq!(opts.log_level, mule_obs::log::Severity::Debug);

        // Out-of-range sampling rates and malformed specs are rejected.
        assert!(matches!(
            parse_args(&argv("serve --trace-sample 1.5")).unwrap_err(),
            CliError::InvalidValue { flag, .. } if flag == "--trace-sample"
        ));
        assert!(matches!(
            parse_args(&argv("serve --slo p42=1")).unwrap_err(),
            CliError::InvalidValue { flag, .. } if flag == "--slo"
        ));
        assert!(matches!(
            parse_args(&argv("serve --log-level loud")).unwrap_err(),
            CliError::InvalidValue { flag, .. } if flag == "--log-level"
        ));
        assert!(USAGE.contains("--debug-endpoints"));
        assert!(USAGE.contains("--trace-sample"));
        assert!(USAGE.contains("--slo"));
        assert!(USAGE.contains("--log-level"));
    }

    #[test]
    fn loadgen_duration_warmup_and_slo_flags() {
        let defaults = LoadgenOptions::default();
        assert!(defaults.duration_s.is_none());
        assert_eq!(defaults.warmup, 0);
        assert!(defaults.slo.is_none());

        let cmd = parse_args(&argv(
            "loadgen --duration-s 30 --warmup 100 --slo p99_ms=250",
        ))
        .unwrap();
        let CliCommand::Loadgen(opts) = cmd else {
            panic!()
        };
        assert_eq!(opts.duration_s, Some(30.0));
        assert_eq!(opts.warmup, 100);
        assert_eq!(opts.slo.unwrap().p99_ms, Some(250.0));

        // A non-positive duration would spin forever or not at all.
        assert!(matches!(
            parse_args(&argv("loadgen --duration-s 0")).unwrap_err(),
            CliError::InvalidValue { flag, .. } if flag == "--duration-s"
        ));
        assert!(matches!(
            parse_args(&argv("loadgen --slo availability=250")).unwrap_err(),
            CliError::InvalidValue { flag, .. } if flag == "--slo"
        ));
        assert!(USAGE.contains("--duration-s"));
        assert!(USAGE.contains("--warmup"));
    }

    #[test]
    fn chaos_defaults_and_flags() {
        let CliCommand::Chaos(opts) = parse_args(&argv("chaos")).unwrap() else {
            panic!("expected chaos");
        };
        assert_eq!(opts, ChaosOptions::default());
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.requests, 40);

        let cmd = parse_args(&argv(
            "chaos --seed 11 --requests 80 --spec-pool 2 --targets 8 --mules 3 \
             --planner chb --fault-plan serve.plan=panic#2 --deadline-ms 300",
        ))
        .unwrap();
        let CliCommand::Chaos(opts) = cmd else {
            panic!()
        };
        assert_eq!(opts.seed, 11);
        assert_eq!(opts.requests, 80);
        assert_eq!(opts.spec_pool, 2);
        assert_eq!(opts.targets, 8);
        assert_eq!(opts.mules, 3);
        assert_eq!(opts.planner, PlannerChoice::Chb);
        assert_eq!(opts.fault_plan.as_deref(), Some("serve.plan=panic#2"));
        assert_eq!(opts.deadline_ms, 300);

        assert!(matches!(
            parse_args(&argv("chaos --addr 127.0.0.1:1")).unwrap_err(),
            CliError::UnknownFlag(_)
        ));
        assert!(USAGE.contains("chaos"));
    }

    #[test]
    fn loadgen_defaults_flags_and_gates() {
        let CliCommand::Loadgen(opts) = parse_args(&argv("loadgen")).unwrap() else {
            panic!("expected loadgen");
        };
        assert_eq!(opts, LoadgenOptions::default());
        assert_eq!(opts.requests, 1000);
        assert_eq!(opts.connections, 4);
        assert!(opts.max_p99_ms.is_none());

        let cmd = parse_args(&argv(
            "loadgen --addr 127.0.0.1:7979 --requests 2000 --connections 8 --spec-pool 16 \
             --targets 12 --mules 3 --seed 9 --planner chb --json BENCH_server.json \
             --max-p99 250 --min-rps 50",
        ))
        .unwrap();
        let CliCommand::Loadgen(opts) = cmd else {
            panic!()
        };
        assert_eq!(opts.addr, "127.0.0.1:7979");
        assert_eq!(opts.requests, 2000);
        assert_eq!(opts.connections, 8);
        assert_eq!(opts.spec_pool, 16);
        assert_eq!(opts.targets, 12);
        assert_eq!(opts.mules, 3);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.planner, PlannerChoice::Chb);
        assert_eq!(opts.json_path.as_deref(), Some("BENCH_server.json"));
        assert_eq!(opts.max_p99_ms, Some(250.0));
        assert_eq!(opts.min_rps, Some(50.0));

        let CliCommand::Loadgen(opts) = parse_args(&argv("loadgen --retries 0")).unwrap() else {
            panic!()
        };
        assert_eq!(opts.retries, 0, "--retries 0 disables retrying");
        assert_eq!(LoadgenOptions::default().retries, 3);

        assert!(matches!(
            parse_args(&argv("loadgen --svg x.svg")).unwrap_err(),
            CliError::UnknownFlag(_)
        ));
        assert!(matches!(
            parse_args(&argv("loadgen --max-p99 fast")).unwrap_err(),
            CliError::InvalidValue { .. }
        ));
        assert!(USAGE.contains("loadgen"));
        assert!(USAGE.contains("--max-p99"));
        assert!(USAGE.contains("--min-rps"));
    }

    #[test]
    fn trace_and_profile_flags_parse_on_scenario_and_bench_subcommands() {
        // Off by default — the golden plan bytes depend on it.
        assert!(CliOptions::default().trace_out.is_none());
        assert!(!CliOptions::default().profile);

        let CliCommand::Plan(opts) =
            parse_args(&argv("plan --trace-out trace.json --profile")).unwrap()
        else {
            panic!()
        };
        assert_eq!(opts.trace_out.as_deref(), Some("trace.json"));
        assert!(opts.profile);

        let CliCommand::Sweep(opts) = parse_args(&argv("sweep --trace-out s.json")).unwrap() else {
            panic!()
        };
        assert_eq!(opts.base.trace_out.as_deref(), Some("s.json"));

        let CliCommand::BenchTours(opts) = parse_args(&argv(
            "bench-tours --overhead-gate 1.05 --trace-out t.json --profile",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(opts.overhead_gate, Some(1.05));
        assert_eq!(opts.trace_out.as_deref(), Some("t.json"));
        assert!(opts.profile);

        let CliCommand::Serve(opts) = parse_args(&argv("serve --slow-ms 250")).unwrap() else {
            panic!()
        };
        assert_eq!(opts.slow_ms, Some(250.0));
        assert!(ServeOptions::default().slow_ms.is_none());

        assert!(matches!(
            parse_args(&argv("plan --trace-out")).unwrap_err(),
            CliError::MissingValue(_)
        ));
        assert!(USAGE.contains("--trace-out"));
        assert!(USAGE.contains("--profile"));
        assert!(USAGE.contains("--overhead-gate"));
        assert!(USAGE.contains("--slow-ms"));
    }

    #[test]
    fn svg_and_csv_paths_are_captured() {
        let CliCommand::Simulate(opts) =
            parse_args(&argv("simulate --svg plan.svg --csv run1")).unwrap()
        else {
            panic!()
        };
        assert_eq!(opts.svg_path.as_deref(), Some("plan.svg"));
        assert_eq!(opts.csv_prefix.as_deref(), Some("run1"));
    }
}
