//! `patrolctl` — command-line front end for the data-mule patrolling
//! workspace. See `patrolctl help` for usage.

use patrol_cli::{parse_args, run_command};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", patrol_cli::args::USAGE);
            std::process::exit(2);
        }
    };
    match run_command(&command) {
        Ok(output) => {
            print!("{}", output.text);
            for file in &output.files_written {
                eprintln!("wrote {file}");
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
