//! # patrol-cli
//!
//! Library backing the `patrolctl` binary: a small, dependency-free command
//! line front end for generating scenarios, planning patrols, simulating
//! them and comparing mechanisms.
//!
//! ```text
//! patrolctl render   [--targets N] [--mules N] [--seed S] [--planner P] ...
//! patrolctl simulate [--planner P] [--horizon SECONDS] [--svg FILE] [--csv PREFIX] ...
//! patrolctl compare  [--horizon SECONDS] ...
//! ```
//!
//! The argument parser and command implementations live here so they can be
//! unit-tested; the binary is a thin wrapper.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod args;
pub mod commands;

pub use args::{parse_args, CliCommand, CliError, CliOptions, PlannerChoice};
pub use commands::{run_command, CommandOutput};
