//! Counter-clockwise angle arithmetic.
//!
//! The W-TCTP *patrolling rule* (paper §3.2) decides, at a VIP where several
//! cycles intersect, which outgoing edge a mule takes next: "select the
//! target which has minimal included angle with the former route g_j → g_i
//! in the counter-clockwise direction". This module provides the angle
//! primitives that rule needs, plus general bearing helpers used by the
//! simulator and the Sweep baseline.

use crate::point::Point;
use std::f64::consts::{PI, TAU};

/// A compass-style bearing, stored as radians counter-clockwise from the
/// positive x-axis (east), normalised to `[0, 2π)`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bearing(f64);

impl Bearing {
    /// Builds a bearing from an arbitrary radian value, normalising it into
    /// `[0, 2π)`.
    pub fn from_radians(theta: f64) -> Self {
        Bearing(normalize_angle(theta))
    }

    /// Bearing of the vector `from → to`. Returns `None` when the points
    /// coincide (the direction is undefined).
    pub fn between(from: &Point, to: &Point) -> Option<Self> {
        let v = *to - *from;
        if v.norm_squared() <= f64::EPSILON {
            None
        } else {
            Some(Bearing::from_radians(v.angle()))
        }
    }

    /// Radians in `[0, 2π)`.
    #[inline]
    pub fn radians(&self) -> f64 {
        self.0
    }

    /// Degrees in `[0, 360)`.
    #[inline]
    pub fn degrees(&self) -> f64 {
        self.0.to_degrees()
    }

    /// Counter-clockwise angular distance from `self` to `other`,
    /// in `[0, 2π)`.
    pub fn ccw_to(&self, other: &Bearing) -> f64 {
        normalize_angle(other.0 - self.0)
    }
}

/// Normalises an angle in radians to `[0, 2π)`.
#[inline]
pub fn normalize_angle(theta: f64) -> f64 {
    let mut t = theta % TAU;
    if t < 0.0 {
        t += TAU;
    }
    // `-1e-30 % TAU` is a tiny negative number whose correction lands on TAU
    // exactly; fold that back to zero so the invariant `t < TAU` holds.
    if t >= TAU {
        t = 0.0;
    }
    t
}

/// Normalises an angle to `(-π, π]`, the signed convention.
#[inline]
pub fn normalize_signed(theta: f64) -> f64 {
    let t = normalize_angle(theta);
    if t > PI {
        t - TAU
    } else {
        t
    }
}

/// The counter-clockwise *included angle* used by the W-TCTP patrolling
/// rule.
///
/// A mule arrives at junction `at` travelling along the edge `from → at`
/// and considers continuing along `at → candidate`. The rule measures the
/// angle swept counter-clockwise from the **reverse** of the incoming
/// direction (i.e. the direction `at → from`) to the outgoing direction
/// `at → candidate`. Picking the candidate with the smallest such angle
/// makes every mule traverse the cycles of a weighted patrolling path in the
/// same, deterministic order (paper Fig. 5).
///
/// Returns `None` when either direction is undefined because the points
/// coincide.
pub fn ccw_included_angle(from: &Point, at: &Point, candidate: &Point) -> Option<f64> {
    let back = Bearing::between(at, from)?;
    let out = Bearing::between(at, candidate)?;
    Some(back.ccw_to(&out))
}

/// Interior angle at vertex `b` of the polyline `a – b – c`, in `[0, π]`.
///
/// This is the unsigned "corner sharpness" used by heuristics that penalise
/// sharp turns; it does not distinguish left from right turns.
pub fn interior_angle(a: &Point, b: &Point, c: &Point) -> Option<f64> {
    let u = *a - *b;
    let v = *c - *b;
    let nu = u.norm();
    let nv = v.norm();
    if nu <= f64::EPSILON || nv <= f64::EPSILON {
        return None;
    }
    let cos = (u.dot(&v) / (nu * nv)).clamp(-1.0, 1.0);
    Some(cos.acos())
}

/// Orientation of the ordered triple `(a, b, c)`.
///
/// Positive for a counter-clockwise turn, negative for clockwise, zero for
/// collinear points (within floating-point arithmetic). This is the
/// standard signed-area predicate: `2 · area(a, b, c)`.
#[inline]
pub fn orientation(a: &Point, b: &Point, c: &Point) -> f64 {
    (*b - *a).cross(&(*c - *a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn normalize_angle_wraps_into_zero_two_pi() {
        assert!(approx_eq(normalize_angle(0.0), 0.0));
        assert!(approx_eq(normalize_angle(TAU), 0.0));
        assert!(approx_eq(normalize_angle(-FRAC_PI_2), 1.5 * PI));
        assert!(approx_eq(normalize_angle(3.0 * PI), PI));
        let t = normalize_angle(-1e-30);
        assert!((0.0..TAU).contains(&t));
    }

    #[test]
    fn normalize_signed_wraps_into_pi_range() {
        assert!(approx_eq(normalize_signed(1.5 * PI), -0.5 * PI));
        assert!(approx_eq(normalize_signed(PI), PI));
        assert!(approx_eq(normalize_signed(-PI), PI));
    }

    #[test]
    fn bearing_between_cardinal_points() {
        let o = Point::ORIGIN;
        let east = Bearing::between(&o, &Point::new(5.0, 0.0)).unwrap();
        let north = Bearing::between(&o, &Point::new(0.0, 5.0)).unwrap();
        assert!(approx_eq(east.radians(), 0.0));
        assert!(approx_eq(north.radians(), FRAC_PI_2));
        assert!(approx_eq(east.degrees(), 0.0));
        assert!(approx_eq(north.degrees(), 90.0));
        assert!(Bearing::between(&o, &o).is_none());
    }

    #[test]
    fn ccw_to_measures_counterclockwise_sweep() {
        let east = Bearing::from_radians(0.0);
        let north = Bearing::from_radians(FRAC_PI_2);
        assert!(approx_eq(east.ccw_to(&north), FRAC_PI_2));
        // Going the other way requires sweeping 3/2 π counter-clockwise.
        assert!(approx_eq(north.ccw_to(&east), 1.5 * PI));
    }

    #[test]
    fn ccw_included_angle_matches_paper_example_shape() {
        // Mule arrives at the VIP (origin) from the east and considers two
        // candidates: one to the north-east and one to the south. The
        // north-east candidate is a smaller CCW sweep from the reversed
        // incoming direction (which points back east).
        let vip = Point::ORIGIN;
        let from = Point::new(10.0, 0.0);
        let ne = Point::new(5.0, 5.0);
        let south = Point::new(0.0, -8.0);
        let a_ne = ccw_included_angle(&from, &vip, &ne).unwrap();
        let a_s = ccw_included_angle(&from, &vip, &south).unwrap();
        assert!(a_ne < a_s, "north-east ({a_ne}) should beat south ({a_s})");
    }

    #[test]
    fn ccw_included_angle_of_straight_back_is_zero() {
        // Returning the way we came is a zero CCW sweep.
        let a = ccw_included_angle(&Point::new(1.0, 0.0), &Point::ORIGIN, &Point::new(2.0, 0.0))
            .unwrap();
        assert!(approx_eq(a, 0.0));
    }

    #[test]
    fn ccw_included_angle_undefined_for_coincident_points() {
        let p = Point::new(1.0, 1.0);
        assert!(ccw_included_angle(&p, &p, &Point::new(2.0, 2.0)).is_none());
        assert!(ccw_included_angle(&Point::new(2.0, 2.0), &p, &p).is_none());
    }

    #[test]
    fn interior_angle_of_right_corner_is_half_pi() {
        let a = Point::new(1.0, 0.0);
        let b = Point::ORIGIN;
        let c = Point::new(0.0, 1.0);
        assert!(approx_eq(interior_angle(&a, &b, &c).unwrap(), FRAC_PI_2));
        assert!(interior_angle(&b, &b, &c).is_none());
    }

    #[test]
    fn orientation_sign_is_ccw_positive() {
        let a = Point::ORIGIN;
        let b = Point::new(1.0, 0.0);
        let up = Point::new(1.0, 1.0);
        let down = Point::new(1.0, -1.0);
        let ahead = Point::new(2.0, 0.0);
        assert!(orientation(&a, &b, &up) > 0.0);
        assert!(orientation(&a, &b, &down) < 0.0);
        assert!(approx_eq(orientation(&a, &b, &ahead), 0.0));
    }
}
