//! # mule-geom
//!
//! Planar geometry substrate for the wireless mobile data-mule patrolling
//! system. Everything the planners and the simulator need to reason about
//! the monitoring field lives here:
//!
//! * [`Point`] — a 2-D location in metres, with distance / bearing helpers.
//! * [`angle`] — counter-clockwise included angles used by the W-TCTP
//!   patrolling rule ("pick the outgoing edge with the minimal CCW angle").
//! * [`Segment`] — directed edges of a patrolling path, with length,
//!   interpolation and point-projection.
//! * [`hull`] — convex-hull construction (Andrew monotone chain) that seeds
//!   the CHB Hamiltonian-circuit heuristic of reference \[5\].
//! * [`BoundingBox`] — axis-aligned extents of a field or target cluster.
//! * [`Polyline`] — open/closed chains of points with arc-length queries,
//!   used to walk a mule a given distance along a patrolling route.
//! * [`KdTree`] — nearest-neighbour queries (closest start point, closest
//!   target) in `O(log n)` expected time.
//! * [`UniformGrid`] — bucketed spatial index for range queries
//!   (which targets are within communication range of a mule).
//!
//! The crate is dependency-light (only `serde` for persisting scenarios) and
//! panic-free on degenerate input wherever a sensible total behaviour
//! exists; degenerate cases that have no sensible answer return `Option`.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod angle;
pub mod bbox;
pub mod grid;
pub mod hull;
pub mod kdtree;
pub mod point;
pub mod polyline;
pub mod segment;

pub use angle::{ccw_included_angle, normalize_angle, Bearing};
pub use bbox::BoundingBox;
pub use grid::UniformGrid;
pub use hull::{convex_hull, hull_diameter, is_convex_polygon, point_in_convex_polygon};
pub use kdtree::KdTree;
pub use point::Point;
pub use polyline::Polyline;
pub use segment::Segment;

/// Numerical tolerance used by geometric predicates throughout the crate.
///
/// Distances are metres; the paper's field is 800 m × 800 m, so a nanometre
/// tolerance is far below any physically meaningful difference while being
/// far above `f64` rounding error for coordinates of this magnitude.
pub const EPSILON: f64 = 1e-9;

/// Returns `true` when two floating-point lengths are equal within
/// [`EPSILON`] (absolute) or a relative tolerance of `1e-12`.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    let diff = (a - b).abs();
    diff <= EPSILON || diff <= f64::max(a.abs(), b.abs()) * 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_accepts_identical_values() {
        assert!(approx_eq(1.0, 1.0));
        assert!(approx_eq(0.0, 0.0));
    }

    #[test]
    fn approx_eq_accepts_tiny_absolute_differences() {
        assert!(approx_eq(1.0, 1.0 + 1e-10));
        assert!(approx_eq(-3.5, -3.5 - 1e-10));
    }

    #[test]
    fn approx_eq_accepts_relative_differences_on_large_values() {
        let a = 1.0e12;
        assert!(approx_eq(a, a + 0.5e-1 * 1e-12 * a));
    }

    #[test]
    fn approx_eq_rejects_clear_differences() {
        assert!(!approx_eq(1.0, 1.1));
        assert!(!approx_eq(0.0, 1e-3));
    }
}
