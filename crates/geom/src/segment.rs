//! Directed line segments — the edges of a patrolling path.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// A directed segment from [`Segment::a`] to [`Segment::b`].
///
/// Patrolling paths are sequences of segments; break-edge selection in
/// W-TCTP / RW-TCTP removes one segment and replaces it with two new ones,
/// so the planners manipulate these values directly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment from `a` to `b`.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment in metres.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(&self.b)
    }

    /// The segment traversed in the opposite direction.
    #[inline]
    pub fn reversed(&self) -> Segment {
        Segment::new(self.b, self.a)
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(&self.b)
    }

    /// Point at arc-length parameter `t ∈ [0, 1]` along the segment
    /// (clamped).
    #[inline]
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(&self.b, t)
    }

    /// Point reached after travelling `distance` metres from `a` towards
    /// `b`, never overshooting `b`.
    #[inline]
    pub fn point_at_distance(&self, distance: f64) -> Point {
        self.a.advance_towards(&self.b, distance.max(0.0))
    }

    /// The point on the segment closest to `p`.
    pub fn closest_point(&self, p: &Point) -> Point {
        let d = self.b - self.a;
        let len2 = d.norm_squared();
        if len2 <= f64::EPSILON {
            return self.a;
        }
        let t = ((*p - self.a).dot(&d) / len2).clamp(0.0, 1.0);
        self.at(t)
    }

    /// Distance from `p` to the segment.
    #[inline]
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// Extra path length incurred by *detouring* this segment through
    /// `via`: `|a→via| + |via→b| − |a→b|`.
    ///
    /// This is exactly the quantity minimised by the W-TCTP Shortest-Length
    /// policy (Exp. 1) and the RW-TCTP recharge splice (Exp. 3), so it gets
    /// a dedicated, well-tested helper.
    #[inline]
    pub fn detour_cost(&self, via: &Point) -> f64 {
        self.a.distance(via) + via.distance(&self.b) - self.length()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn length_and_midpoint() {
        let s = seg(0.0, 0.0, 6.0, 8.0);
        assert!(approx_eq(s.length(), 10.0));
        assert_eq!(s.midpoint(), Point::new(3.0, 4.0));
    }

    #[test]
    fn reversed_swaps_endpoints_and_preserves_length() {
        let s = seg(1.0, 2.0, 3.0, 4.0);
        let r = s.reversed();
        assert_eq!(r.a, s.b);
        assert_eq!(r.b, s.a);
        assert!(approx_eq(r.length(), s.length()));
    }

    #[test]
    fn at_interpolates_and_clamps() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.at(0.25), Point::new(2.5, 0.0));
        assert_eq!(s.at(-1.0), s.a);
        assert_eq!(s.at(5.0), s.b);
    }

    #[test]
    fn point_at_distance_never_overshoots() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.point_at_distance(3.0), Point::new(3.0, 0.0));
        assert_eq!(s.point_at_distance(30.0), s.b);
        assert_eq!(s.point_at_distance(-5.0), s.a);
    }

    #[test]
    fn closest_point_projects_onto_interior_or_endpoints() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.closest_point(&Point::new(4.0, 3.0)), Point::new(4.0, 0.0));
        assert_eq!(s.closest_point(&Point::new(-5.0, 2.0)), s.a);
        assert_eq!(s.closest_point(&Point::new(20.0, -2.0)), s.b);
        assert!(approx_eq(s.distance_to_point(&Point::new(4.0, 3.0)), 3.0));
    }

    #[test]
    fn closest_point_of_degenerate_segment_is_its_single_point() {
        let s = seg(2.0, 2.0, 2.0, 2.0);
        assert_eq!(s.closest_point(&Point::new(5.0, 5.0)), Point::new(2.0, 2.0));
    }

    #[test]
    fn detour_cost_is_zero_for_collinear_via_and_positive_otherwise() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert!(approx_eq(s.detour_cost(&Point::new(5.0, 0.0)), 0.0));
        let c = s.detour_cost(&Point::new(5.0, 5.0));
        assert!(c > 0.0);
        // Triangle inequality: detour through (5,5) costs 2*sqrt(50) - 10.
        assert!(approx_eq(c, 2.0 * 50.0_f64.sqrt() - 10.0));
    }
}
