//! Axis-aligned bounding boxes.
//!
//! Used to describe the monitoring field (the paper uses an 800 m × 800 m
//! square), the extents of a disconnected target cluster, and as the
//! pruning primitive of the [`crate::KdTree`].

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Smallest x coordinate.
    pub min_x: f64,
    /// Smallest y coordinate.
    pub min_y: f64,
    /// Largest x coordinate.
    pub max_x: f64,
    /// Largest y coordinate.
    pub max_y: f64,
}

impl BoundingBox {
    /// Creates a bounding box from two opposite corners (in any order).
    pub fn from_corners(a: Point, b: Point) -> Self {
        BoundingBox {
            min_x: a.x.min(b.x),
            min_y: a.y.min(b.y),
            max_x: a.x.max(b.x),
            max_y: a.y.max(b.y),
        }
    }

    /// A square field with its south-west corner at the origin — the
    /// paper's monitoring region is `BoundingBox::square(800.0)`.
    pub fn square(side: f64) -> Self {
        BoundingBox {
            min_x: 0.0,
            min_y: 0.0,
            max_x: side,
            max_y: side,
        }
    }

    /// Smallest box containing all `points`, or `None` if the slice is
    /// empty.
    pub fn containing(points: &[Point]) -> Option<Self> {
        let first = points.first()?;
        let mut bb = BoundingBox::from_corners(*first, *first);
        for p in &points[1..] {
            bb.expand_to(p);
        }
        Some(bb)
    }

    /// Grows the box (in place) so that it contains `p`.
    pub fn expand_to(&mut self, p: &Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Width (x extent) of the box.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height (y extent) of the box.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area in square metres.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric centre of the box.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) * 0.5,
            (self.min_y + self.max_y) * 0.5,
        )
    }

    /// Returns `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Returns `true` when the two boxes overlap (sharing only a boundary
    /// counts as overlapping).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Squared distance from `p` to the closest point of the box (zero when
    /// `p` is inside). Used for kd-tree pruning.
    pub fn distance_squared_to(&self, p: &Point) -> f64 {
        let dx = if p.x < self.min_x {
            self.min_x - p.x
        } else if p.x > self.max_x {
            p.x - self.max_x
        } else {
            0.0
        };
        let dy = if p.y < self.min_y {
            self.min_y - p.y
        } else if p.y > self.max_y {
            p.y - self.max_y
        } else {
            0.0
        };
        dx * dx + dy * dy
    }

    /// Clamps a point into the box — scenario generators use this to keep
    /// jittered cluster members inside the monitoring field.
    pub fn clamp(&self, p: &Point) -> Point {
        Point::new(
            p.x.clamp(self.min_x, self.max_x),
            p.y.clamp(self.min_y, self.max_y),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn from_corners_accepts_any_corner_order() {
        let a = BoundingBox::from_corners(Point::new(5.0, 1.0), Point::new(1.0, 5.0));
        assert_eq!(a.min_x, 1.0);
        assert_eq!(a.max_x, 5.0);
        assert_eq!(a.min_y, 1.0);
        assert_eq!(a.max_y, 5.0);
    }

    #[test]
    fn square_matches_paper_field() {
        let f = BoundingBox::square(800.0);
        assert!(approx_eq(f.width(), 800.0));
        assert!(approx_eq(f.height(), 800.0));
        assert!(approx_eq(f.area(), 640_000.0));
        assert_eq!(f.center(), Point::new(400.0, 400.0));
    }

    #[test]
    fn containing_covers_every_point() {
        let pts = [
            Point::new(10.0, 20.0),
            Point::new(-5.0, 3.0),
            Point::new(7.0, 40.0),
        ];
        let bb = BoundingBox::containing(&pts).unwrap();
        for p in &pts {
            assert!(bb.contains(p));
        }
        assert!(BoundingBox::containing(&[]).is_none());
    }

    #[test]
    fn contains_includes_boundary() {
        let bb = BoundingBox::square(10.0);
        assert!(bb.contains(&Point::new(0.0, 0.0)));
        assert!(bb.contains(&Point::new(10.0, 10.0)));
        assert!(bb.contains(&Point::new(5.0, 0.0)));
        assert!(!bb.contains(&Point::new(10.1, 5.0)));
        assert!(!bb.contains(&Point::new(5.0, -0.1)));
    }

    #[test]
    fn intersects_detects_overlap_and_separation() {
        let a = BoundingBox::square(10.0);
        let b = BoundingBox::from_corners(Point::new(5.0, 5.0), Point::new(15.0, 15.0));
        let c = BoundingBox::from_corners(Point::new(20.0, 20.0), Point::new(30.0, 30.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn distance_squared_to_is_zero_inside_and_correct_outside() {
        let bb = BoundingBox::square(10.0);
        assert!(approx_eq(
            bb.distance_squared_to(&Point::new(5.0, 5.0)),
            0.0
        ));
        assert!(approx_eq(
            bb.distance_squared_to(&Point::new(13.0, 14.0)),
            9.0 + 16.0
        ));
        assert!(approx_eq(
            bb.distance_squared_to(&Point::new(-2.0, 5.0)),
            4.0
        ));
    }

    #[test]
    fn clamp_projects_points_into_the_box() {
        let bb = BoundingBox::square(10.0);
        assert_eq!(bb.clamp(&Point::new(-5.0, 20.0)), Point::new(0.0, 10.0));
        assert_eq!(bb.clamp(&Point::new(3.0, 4.0)), Point::new(3.0, 4.0));
    }

    #[test]
    fn expand_to_grows_monotonically() {
        let mut bb = BoundingBox::from_corners(Point::ORIGIN, Point::ORIGIN);
        bb.expand_to(&Point::new(-3.0, 7.0));
        assert!(bb.contains(&Point::new(-3.0, 7.0)));
        assert!(bb.contains(&Point::ORIGIN));
        assert!(approx_eq(bb.width(), 3.0));
        assert!(approx_eq(bb.height(), 7.0));
    }
}
