//! Convex hulls.
//!
//! The CHB Hamiltonian-circuit heuristic (reference \[5\] of the paper, and
//! the "Hamiltonian_CycleConstruct" step of every TCTP planner) starts from
//! the convex hull of the target set and inserts the interior targets one by
//! one. This module provides the hull itself (Andrew's monotone chain,
//! `O(n log n)`), plus the convexity and containment predicates the tests
//! and the insertion heuristic rely on.

use crate::angle::orientation;
use crate::point::Point;

/// Computes the convex hull of `points` and returns the hull vertices in
/// **counter-clockwise** order, starting from the lexicographically smallest
/// point. Collinear points on hull edges are *not* included.
///
/// Degenerate inputs are handled totally:
/// * 0, 1 or 2 points → the input (deduplicated) is returned as-is;
/// * all points collinear → the two extreme points.
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| a.lexicographic_cmp(b));
    pts.dedup_by(|a, b| a.distance_squared(b) <= f64::EPSILON);

    if pts.len() <= 2 {
        return pts;
    }

    let n = pts.len();
    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);

    // Lower hull.
    for p in &pts {
        while hull.len() >= 2 && orientation(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(*p);
    }

    // Upper hull.
    let lower_len = hull.len() + 1;
    for p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && orientation(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(*p);
    }

    // The last point is the same as the first one; drop it.
    hull.pop();

    // Fully collinear input collapses to the two extremes.
    if hull.len() < 3 {
        hull.truncate(2);
    }
    hull
}

/// Farthest-apart pair of vertices of a convex polygon given in CCW order
/// (as produced by [`convex_hull`]), found with the rotating-calipers
/// antipodal-pair walk in `O(h)` for `h` hull vertices. Returns indices into
/// `hull`, smaller index first. `None` for fewer than two vertices.
///
/// Because the farthest pair of *any* point set is always a pair of its
/// convex-hull vertices, `hull_diameter(&convex_hull(points))` finds the
/// diameter of the whole set in `O(n log n)` — replacing the `O(n²)`
/// all-pairs scan of `DistanceMatrix::farthest_pair` on large instances.
pub fn hull_diameter(hull: &[Point]) -> Option<(usize, usize)> {
    let n = hull.len();
    match n {
        0 | 1 => return None,
        2 => return Some((0, 1)),
        _ => {}
    }

    // Area of the triangle spanned by edge (i, i+1) and vertex j, used to
    // advance the antipodal pointer while the width keeps growing.
    let cross =
        |i: usize, j: usize| -> f64 { orientation(&hull[i], &hull[(i + 1) % n], &hull[j]).abs() };

    let mut best = (0usize, 1usize);
    let mut best_d2 = hull[0].distance_squared(&hull[1]);
    let consider = |i: usize, j: usize, best: &mut (usize, usize), best_d2: &mut f64| {
        let d2 = hull[i].distance_squared(&hull[j]);
        if d2 > *best_d2 {
            *best_d2 = d2;
            *best = if i < j { (i, j) } else { (j, i) };
        }
    };

    let mut j = 1;
    for i in 0..n {
        // Advance j while the support distance from edge (i, i+1) grows.
        while cross(i, (j + 1) % n) > cross(i, j) {
            j = (j + 1) % n;
        }
        consider(i, j, &mut best, &mut best_d2);
        consider((i + 1) % n, j, &mut best, &mut best_d2);
    }
    Some(best)
}

/// Returns `true` when `polygon` (given in order, either orientation) is a
/// convex polygon. Polygons with fewer than 3 vertices are trivially
/// considered convex.
pub fn is_convex_polygon(polygon: &[Point]) -> bool {
    let n = polygon.len();
    if n < 3 {
        return true;
    }
    let mut sign = 0.0_f64;
    for i in 0..n {
        let o = orientation(&polygon[i], &polygon[(i + 1) % n], &polygon[(i + 2) % n]);
        if o.abs() <= f64::EPSILON {
            continue; // collinear corner does not break convexity
        }
        if sign == 0.0 {
            sign = o.signum();
        } else if o.signum() != sign {
            return false;
        }
    }
    true
}

/// Returns `true` when `p` lies inside or on the boundary of the convex
/// polygon `hull` given in counter-clockwise order.
pub fn point_in_convex_polygon(p: &Point, hull: &[Point]) -> bool {
    let n = hull.len();
    match n {
        0 => false,
        1 => hull[0].distance_squared(p) <= crate::EPSILON,
        2 => {
            let seg = crate::Segment::new(hull[0], hull[1]);
            seg.distance_to_point(p) <= crate::EPSILON
        }
        _ => {
            for i in 0..n {
                if orientation(&hull[i], &hull[(i + 1) % n], p) < -crate::EPSILON {
                    return false;
                }
            }
            true
        }
    }
}

/// Signed area of a simple polygon given in order (positive when
/// counter-clockwise). Uses the shoelace formula.
pub fn signed_area(polygon: &[Point]) -> f64 {
    let n = polygon.len();
    if n < 3 {
        return 0.0;
    }
    let mut twice_area = 0.0;
    for i in 0..n {
        let a = &polygon[i];
        let b = &polygon[(i + 1) % n];
        twice_area += a.x * b.y - b.x * a.y;
    }
    twice_area * 0.5
}

/// Perimeter of a closed polygon given in order.
pub fn perimeter(polygon: &[Point]) -> f64 {
    let n = polygon.len();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n {
        total += polygon[i].distance(&polygon[(i + 1) % n]);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn square() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ]
    }

    #[test]
    fn hull_of_square_with_interior_points_is_the_square() {
        let mut pts = square();
        pts.push(Point::new(2.0, 2.0));
        pts.push(Point::new(1.0, 3.0));
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        for corner in square() {
            assert!(hull.contains(&corner), "missing corner {corner}");
        }
        assert!(is_convex_polygon(&hull));
        assert!(signed_area(&hull) > 0.0, "hull must be CCW");
    }

    #[test]
    fn hull_of_degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        let single = convex_hull(&[Point::new(1.0, 1.0)]);
        assert_eq!(single, vec![Point::new(1.0, 1.0)]);
        let duplicated = convex_hull(&[Point::new(1.0, 1.0), Point::new(1.0, 1.0)]);
        assert_eq!(duplicated.len(), 1);
    }

    #[test]
    fn hull_of_collinear_points_is_the_two_extremes() {
        let pts: Vec<Point> = (0..7)
            .map(|i| Point::new(i as f64, 2.0 * i as f64))
            .collect();
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 2);
        assert!(hull.contains(&Point::new(0.0, 0.0)));
        assert!(hull.contains(&Point::new(6.0, 12.0)));
    }

    #[test]
    fn hull_excludes_collinear_boundary_points() {
        let mut pts = square();
        pts.push(Point::new(2.0, 0.0)); // on the bottom edge
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!(!hull.contains(&Point::new(2.0, 0.0)));
    }

    #[test]
    fn point_in_convex_polygon_boundary_and_interior() {
        let hull = convex_hull(&square());
        assert!(point_in_convex_polygon(&Point::new(2.0, 2.0), &hull));
        assert!(point_in_convex_polygon(&Point::new(0.0, 0.0), &hull));
        assert!(point_in_convex_polygon(&Point::new(2.0, 0.0), &hull));
        assert!(!point_in_convex_polygon(&Point::new(5.0, 2.0), &hull));
        assert!(!point_in_convex_polygon(&Point::new(-0.1, 2.0), &hull));
    }

    #[test]
    fn point_in_degenerate_hulls() {
        assert!(!point_in_convex_polygon(&Point::ORIGIN, &[]));
        assert!(point_in_convex_polygon(
            &Point::new(1.0, 1.0),
            &[Point::new(1.0, 1.0)]
        ));
        let segment_hull = vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0)];
        assert!(point_in_convex_polygon(
            &Point::new(2.0, 0.0),
            &segment_hull
        ));
        assert!(!point_in_convex_polygon(
            &Point::new(2.0, 1.0),
            &segment_hull
        ));
    }

    #[test]
    fn is_convex_polygon_detects_reflex_vertices() {
        assert!(is_convex_polygon(&square()));
        let dented = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(2.0, 1.0), // dent
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ];
        assert!(!is_convex_polygon(&dented));
        assert!(is_convex_polygon(&[Point::ORIGIN, Point::new(1.0, 1.0)]));
    }

    #[test]
    fn hull_diameter_matches_brute_force() {
        // Deterministic pseudo-random sets, diameter cross-checked against
        // the all-pairs scan over the hull vertices.
        for salt in 0..8u64 {
            let pts: Vec<Point> = (0..40u64)
                .map(|i| {
                    let h = i.wrapping_mul(6364136223846793005).wrapping_add(salt);
                    Point::new((h % 900) as f64, ((h >> 20) % 900) as f64)
                })
                .collect();
            let hull = convex_hull(&pts);
            let (a, b) = hull_diameter(&hull).unwrap();
            let calipers = hull[a].distance(&hull[b]);
            let brute = hull
                .iter()
                .flat_map(|p| hull.iter().map(move |q| p.distance(q)))
                .fold(0.0f64, f64::max);
            assert!(
                approx_eq(calipers, brute),
                "salt {salt}: calipers {calipers} vs brute {brute}"
            );
            assert!(a < b);
        }
    }

    #[test]
    fn hull_diameter_of_degenerate_hulls() {
        assert!(hull_diameter(&[]).is_none());
        assert!(hull_diameter(&[Point::ORIGIN]).is_none());
        // Collinear input collapses to the two extremes.
        let hull = convex_hull(&[
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(9.0, 0.0),
        ]);
        assert_eq!(hull_diameter(&hull), Some((0, 1)));
        // On a square the diameter is a diagonal.
        let hull = convex_hull(&square());
        let (a, b) = hull_diameter(&hull).unwrap();
        assert!(approx_eq(hull[a].distance(&hull[b]), 32.0f64.sqrt()));
    }

    #[test]
    fn signed_area_and_perimeter_of_square() {
        let sq = square();
        assert!(approx_eq(signed_area(&sq), 16.0));
        let cw: Vec<Point> = sq.iter().rev().copied().collect();
        assert!(approx_eq(signed_area(&cw), -16.0));
        assert!(approx_eq(perimeter(&sq), 16.0));
        assert!(approx_eq(perimeter(&[Point::ORIGIN]), 0.0));
    }
}
