//! Planar points and vectors in metres.
//!
//! [`Point`] is the basic coordinate type used by every other crate in the
//! workspace: target locations, mule positions, the sink and the recharge
//! station are all `Point`s. The type is `Copy`, 16 bytes, and all
//! operations are branch-free arithmetic so it is cheap to pass around in
//! hot simulation loops.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point (or free vector) in the 2-D monitoring field, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// East–west coordinate in metres.
    pub x: f64,
    /// North–south coordinate in metres (larger `y` is further north).
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point, in metres.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance — avoids the square root when only
    /// comparisons are needed (nearest-neighbour searches, range checks).
    #[inline]
    pub fn distance_squared(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Length of this point interpreted as a vector from the origin.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Squared vector length.
    #[inline]
    pub fn norm_squared(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product with another vector.
    #[inline]
    pub fn dot(&self, other: &Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the 3-D cross product (`self × other`).
    ///
    /// Positive when `other` lies counter-clockwise of `self`; this is the
    /// primitive behind every orientation predicate in the crate.
    #[inline]
    pub fn cross(&self, other: &Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector pointing in the same direction, or `None` for the zero
    /// vector.
    #[inline]
    pub fn normalized(&self) -> Option<Point> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(Point::new(self.x / n, self.y / n))
        }
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    ///
    /// `t` is clamped to `[0, 1]`, so callers can pass an over-shoot fraction
    /// and still land on the segment — convenient when advancing a mule by a
    /// time step that overshoots the next waypoint.
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        let t = t.clamp(0.0, 1.0);
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// The point obtained by moving from `self` towards `target` by
    /// `distance` metres. If `distance` exceeds the separation (or the two
    /// points coincide) the result is `target` — a mule never overshoots its
    /// waypoint.
    pub fn advance_towards(&self, target: &Point, distance: f64) -> Point {
        let total = self.distance(target);
        if total <= f64::EPSILON || distance >= total {
            *target
        } else {
            self.lerp(target, distance / total)
        }
    }

    /// Angle of this vector measured counter-clockwise from the positive
    /// x-axis, in radians, in `(-π, π]`.
    #[inline]
    pub fn angle(&self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Returns `true` when every coordinate is finite (no NaN / infinity).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Lexicographic comparison (x first, then y) used to obtain a
    /// deterministic ordering of points with equal geometric roles.
    pub fn lexicographic_cmp(&self, other: &Point) -> std::cmp::Ordering {
        self.x.total_cmp(&other.x).then(self.y.total_cmp(&other.y))
    }

    /// Centroid of a non-empty set of points, or `None` when `points` is
    /// empty.
    pub fn centroid(points: &[Point]) -> Option<Point> {
        if points.is_empty() {
            return None;
        }
        let mut sx = 0.0;
        let mut sy = 0.0;
        for p in points {
            sx += p.x;
            sy += p.y;
        }
        let n = points.len() as f64;
        Some(Point::new(sx / n, sy / n))
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Point) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn distance_is_symmetric_and_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!(approx_eq(a.distance(&b), 5.0));
        assert!(approx_eq(b.distance(&a), 5.0));
        assert!(approx_eq(a.distance_squared(&b), 25.0));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new(123.4, -56.7);
        assert!(approx_eq(p.distance(&p), 0.0));
    }

    #[test]
    fn cross_sign_encodes_orientation() {
        let east = Point::new(1.0, 0.0);
        let north = Point::new(0.0, 1.0);
        assert!(east.cross(&north) > 0.0); // north is CCW of east
        assert!(north.cross(&east) < 0.0);
        assert!(approx_eq(east.cross(&east), 0.0));
    }

    #[test]
    fn dot_product_of_orthogonal_vectors_is_zero() {
        let east = Point::new(2.0, 0.0);
        let north = Point::new(0.0, 5.0);
        assert!(approx_eq(east.dot(&north), 0.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let m = a.lerp(&b, 0.5);
        assert!(approx_eq(m.x, 5.0));
        assert!(approx_eq(m.y, 10.0));
    }

    #[test]
    fn lerp_clamps_out_of_range_parameters() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        assert_eq!(a.lerp(&b, -1.0), a);
        assert_eq!(a.lerp(&b, 2.0), b);
    }

    #[test]
    fn advance_towards_moves_the_requested_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let c = a.advance_towards(&b, 4.0);
        assert!(approx_eq(c.x, 4.0));
        assert!(approx_eq(c.y, 0.0));
    }

    #[test]
    fn advance_towards_never_overshoots() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 1.0);
        assert_eq!(a.advance_towards(&b, 100.0), b);
        assert_eq!(a.advance_towards(&a, 5.0), a);
    }

    #[test]
    fn normalized_returns_unit_vector_or_none() {
        let v = Point::new(3.0, 4.0);
        let u = v.normalized().unwrap();
        assert!(approx_eq(u.norm(), 1.0));
        assert!(Point::ORIGIN.normalized().is_none());
    }

    #[test]
    fn centroid_of_square_is_its_center() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        let c = Point::centroid(&pts).unwrap();
        assert!(approx_eq(c.x, 1.0));
        assert!(approx_eq(c.y, 1.0));
        assert!(Point::centroid(&[]).is_none());
    }

    #[test]
    fn arithmetic_operators_behave_componentwise() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, 5.0);
        assert_eq!(a + b, Point::new(4.0, 7.0));
        assert_eq!(b - a, Point::new(2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, 2.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn conversion_from_and_to_tuple_round_trips() {
        let p: Point = (7.5, -2.25).into();
        assert_eq!(p, Point::new(7.5, -2.25));
        let t: (f64, f64) = p.into();
        assert_eq!(t, (7.5, -2.25));
    }

    #[test]
    fn angle_of_cardinal_directions() {
        assert!(approx_eq(Point::new(1.0, 0.0).angle(), 0.0));
        assert!(approx_eq(
            Point::new(0.0, 1.0).angle(),
            std::f64::consts::FRAC_PI_2
        ));
        assert!(approx_eq(
            Point::new(-1.0, 0.0).angle(),
            std::f64::consts::PI
        ));
    }

    #[test]
    fn lexicographic_cmp_orders_by_x_then_y() {
        use std::cmp::Ordering;
        let a = Point::new(1.0, 5.0);
        let b = Point::new(2.0, 0.0);
        let c = Point::new(1.0, 7.0);
        assert_eq!(a.lexicographic_cmp(&b), Ordering::Less);
        assert_eq!(b.lexicographic_cmp(&a), Ordering::Greater);
        assert_eq!(a.lexicographic_cmp(&c), Ordering::Less);
        assert_eq!(a.lexicographic_cmp(&a), Ordering::Equal);
    }

    #[test]
    fn is_finite_detects_nan_and_infinity() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
