//! A 2-D kd-tree for nearest-neighbour and range queries.
//!
//! Used by the B-TCTP location-initialisation step (each mule moves to the
//! *closest* start point), by the Random baseline (closest unvisited
//! target), and by the radio substrate (which targets are within
//! communication range of a mule). The tree stores indices into the
//! caller's point slice so callers can map hits back to their own entities.

use crate::bbox::BoundingBox;
use crate::point::Point;

/// A static (build-once) kd-tree over a set of points.
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<Node>,
    root: Option<usize>,
    size: usize,
}

#[derive(Debug, Clone)]
struct Node {
    point: Point,
    /// Index of this point in the slice the tree was built from.
    index: usize,
    left: Option<usize>,
    right: Option<usize>,
    /// Bounding box of the subtree rooted here, used for pruning.
    bbox: BoundingBox,
}

impl KdTree {
    /// Builds a kd-tree over `points`. Duplicates are allowed; each input
    /// index appears exactly once in query results.
    pub fn build(points: &[Point]) -> Self {
        let mut indexed: Vec<(usize, Point)> = points.iter().copied().enumerate().collect();
        let mut nodes = Vec::with_capacity(points.len());
        let root = Self::build_recursive(&mut indexed[..], 0, &mut nodes);
        KdTree {
            nodes,
            root,
            size: points.len(),
        }
    }

    /// Number of points stored in the tree.
    #[inline]
    pub fn len(&self) -> usize {
        self.size
    }

    /// Returns `true` when the tree holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    fn build_recursive(
        items: &mut [(usize, Point)],
        depth: usize,
        nodes: &mut Vec<Node>,
    ) -> Option<usize> {
        if items.is_empty() {
            return None;
        }
        let axis = depth % 2;
        items.sort_by(|a, b| {
            let (ka, kb) = if axis == 0 {
                (a.1.x, b.1.x)
            } else {
                (a.1.y, b.1.y)
            };
            ka.total_cmp(&kb)
        });
        let mid = items.len() / 2;
        let (orig_index, point) = items[mid];

        let node_slot = nodes.len();
        nodes.push(Node {
            point,
            index: orig_index,
            left: None,
            right: None,
            bbox: BoundingBox::from_corners(point, point),
        });

        // Split the slice around the median without re-borrowing `items`.
        let (left_slice, rest) = items.split_at_mut(mid);
        let right_slice = &mut rest[1..];
        let left = Self::build_recursive(left_slice, depth + 1, nodes);
        let right = Self::build_recursive(right_slice, depth + 1, nodes);

        let mut bbox = BoundingBox::from_corners(point, point);
        if let Some(l) = left {
            let b = nodes[l].bbox;
            bbox.expand_to(&Point::new(b.min_x, b.min_y));
            bbox.expand_to(&Point::new(b.max_x, b.max_y));
        }
        if let Some(r) = right {
            let b = nodes[r].bbox;
            bbox.expand_to(&Point::new(b.min_x, b.min_y));
            bbox.expand_to(&Point::new(b.max_x, b.max_y));
        }
        nodes[node_slot].left = left;
        nodes[node_slot].right = right;
        nodes[node_slot].bbox = bbox;
        Some(node_slot)
    }

    /// Index (into the original slice) and distance of the point nearest to
    /// `query`, or `None` when the tree is empty.
    pub fn nearest(&self, query: &Point) -> Option<(usize, f64)> {
        self.nearest_filtered(query, |_| true)
    }

    /// Nearest point whose original index satisfies `accept`. Lets callers
    /// exclude already-visited targets or the querying mule itself.
    pub fn nearest_filtered<F: Fn(usize) -> bool>(
        &self,
        query: &Point,
        accept: F,
    ) -> Option<(usize, f64)> {
        let root = self.root?;
        let mut best: Option<(usize, f64)> = None;
        self.nearest_recursive(root, query, &accept, &mut best);
        best.map(|(i, d2)| (i, d2.sqrt()))
    }

    fn nearest_recursive<F: Fn(usize) -> bool>(
        &self,
        node_idx: usize,
        query: &Point,
        accept: &F,
        best: &mut Option<(usize, f64)>,
    ) {
        let node = &self.nodes[node_idx];
        // Prune whole subtrees that cannot contain a closer accepted point.
        if let Some((_, best_d2)) = best {
            if node.bbox.distance_squared_to(query) > *best_d2 {
                return;
            }
        }
        let d2 = node.point.distance_squared(query);
        if accept(node.index) && best.map(|(_, b)| d2 < b).unwrap_or(true) {
            *best = Some((node.index, d2));
        }
        // Visit the child on the query's side first for better pruning.
        let children = [node.left, node.right];
        let mut order = [0usize, 1usize];
        if let (Some(l), Some(r)) = (node.left, node.right) {
            let dl = self.nodes[l].bbox.distance_squared_to(query);
            let dr = self.nodes[r].bbox.distance_squared_to(query);
            if dr < dl {
                order = [1, 0];
            }
        }
        for &side in &order {
            if let Some(child) = children[side] {
                self.nearest_recursive(child, query, accept, best);
            }
        }
    }

    /// Indices of all points within `radius` metres of `query` (inclusive),
    /// in ascending index order.
    pub fn within_radius(&self, query: &Point, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            let r2 = radius * radius;
            self.range_recursive(root, query, r2, &mut out);
        }
        out.sort_unstable();
        out
    }

    fn range_recursive(&self, node_idx: usize, query: &Point, r2: f64, out: &mut Vec<usize>) {
        let node = &self.nodes[node_idx];
        if node.bbox.distance_squared_to(query) > r2 {
            return;
        }
        if node.point.distance_squared(query) <= r2 {
            out.push(node.index);
        }
        if let Some(l) = node.left {
            self.range_recursive(l, query, r2, out);
        }
        if let Some(r) = node.right {
            self.range_recursive(r, query, r2, out);
        }
    }

    /// `k` nearest neighbours of `query` (fewer when the tree is smaller),
    /// sorted by increasing distance. Brute-force over pruned candidates is
    /// avoided by running `k` successive filtered nearest queries; `k` is
    /// small everywhere this is used (mule counts ≤ 10 in the paper).
    pub fn k_nearest(&self, query: &Point, k: usize) -> Vec<(usize, f64)> {
        let mut found: Vec<(usize, f64)> = Vec::with_capacity(k);
        while found.len() < k {
            let taken: Vec<usize> = found.iter().map(|(i, _)| *i).collect();
            match self.nearest_filtered(query, |i| !taken.contains(&i)) {
                Some(hit) => found.push(hit),
                None => break,
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn sample_points() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
            Point::new(5.0, 5.0),
            Point::new(100.0, 100.0),
        ]
    }

    #[test]
    fn nearest_finds_the_geometrically_closest_point() {
        let pts = sample_points();
        let tree = KdTree::build(&pts);
        let (idx, d) = tree.nearest(&Point::new(6.0, 6.0)).unwrap();
        assert_eq!(idx, 4);
        assert!(approx_eq(d, 2.0_f64.sqrt()));
    }

    #[test]
    fn nearest_of_empty_tree_is_none() {
        let tree = KdTree::build(&[]);
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        assert!(tree.nearest(&Point::ORIGIN).is_none());
    }

    #[test]
    fn nearest_filtered_skips_rejected_indices() {
        let pts = sample_points();
        let tree = KdTree::build(&pts);
        let (idx, _) = tree
            .nearest_filtered(&Point::new(6.0, 6.0), |i| i != 4)
            .unwrap();
        assert_eq!(idx, 2, "with (5,5) excluded, (10,10) is next closest");
        assert!(tree.nearest_filtered(&Point::ORIGIN, |_| false).is_none());
    }

    #[test]
    fn within_radius_returns_exactly_the_in_range_points() {
        let pts = sample_points();
        let tree = KdTree::build(&pts);
        let hits = tree.within_radius(&Point::new(0.0, 0.0), 12.0);
        assert_eq!(hits, vec![0, 1, 3, 4]);
        let none = tree.within_radius(&Point::new(-100.0, -100.0), 5.0);
        assert!(none.is_empty());
        // Radius is inclusive.
        let edge = tree.within_radius(&Point::new(0.0, 0.0), 10.0);
        assert!(edge.contains(&1) && edge.contains(&3));
    }

    #[test]
    fn k_nearest_is_sorted_by_distance_and_bounded_by_tree_size() {
        let pts = sample_points();
        let tree = KdTree::build(&pts);
        let knn = tree.k_nearest(&Point::new(0.0, 0.0), 3);
        assert_eq!(knn.len(), 3);
        assert_eq!(knn[0].0, 0);
        for w in knn.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        let all = tree.k_nearest(&Point::new(0.0, 0.0), 99);
        assert_eq!(all.len(), pts.len());
    }

    #[test]
    fn brute_force_agreement_on_a_fixed_grid() {
        // Exhaustive cross-check of nearest() against brute force over a
        // deterministic grid of query points.
        let pts: Vec<Point> = (0..50)
            .map(|i| Point::new((i * 37 % 100) as f64, (i * 59 % 100) as f64))
            .collect();
        let tree = KdTree::build(&pts);
        for qi in 0..25 {
            let q = Point::new((qi * 13 % 100) as f64 + 0.5, (qi * 7 % 100) as f64 + 0.25);
            let (tree_idx, tree_d) = tree.nearest(&q).unwrap();
            let brute = pts
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    a.1.distance_squared(&q)
                        .total_cmp(&b.1.distance_squared(&q))
                })
                .unwrap();
            assert!(approx_eq(tree_d, brute.1.distance(&q)));
            assert!(approx_eq(pts[tree_idx].distance(&q), brute.1.distance(&q)));
        }
    }

    #[test]
    fn duplicate_points_are_all_retrievable() {
        let pts = vec![Point::new(1.0, 1.0); 4];
        let tree = KdTree::build(&pts);
        let knn = tree.k_nearest(&Point::new(1.0, 1.0), 4);
        let mut indices: Vec<usize> = knn.iter().map(|(i, _)| *i).collect();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2, 3]);
    }
}
