//! A uniform bucket grid for fast range queries over mostly-static points.
//!
//! The radio substrate asks, every simulation tick, "which targets are
//! within communication range (20 m) of this mule?". Targets never move, so
//! a uniform grid with cells sized to the query radius answers that in
//! `O(1)` expected time and is simpler and faster than the kd-tree for this
//! fixed-radius workload.

use crate::bbox::BoundingBox;
use crate::point::Point;
use std::collections::HashMap;

/// A uniform grid spatial index over a fixed set of points.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    cell_size: f64,
    cells: HashMap<(i64, i64), Vec<usize>>,
    points: Vec<Point>,
    bounds: Option<BoundingBox>,
}

impl UniformGrid {
    /// Builds a grid over `points` with square cells of side `cell_size`
    /// metres. `cell_size` must be positive; it is clamped to a small
    /// positive value otherwise so construction is total.
    pub fn build(points: &[Point], cell_size: f64) -> Self {
        let cell_size = if cell_size > 0.0 { cell_size } else { 1.0 };
        let mut cells: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            cells.entry(Self::key(p, cell_size)).or_default().push(i);
        }
        UniformGrid {
            cell_size,
            cells,
            points: points.to_vec(),
            bounds: BoundingBox::containing(points),
        }
    }

    #[inline]
    fn key(p: &Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the grid indexes no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Bounding box of the indexed points (`None` when empty).
    #[inline]
    pub fn bounds(&self) -> Option<BoundingBox> {
        self.bounds
    }

    /// The stored point for an index.
    #[inline]
    pub fn point(&self, index: usize) -> Option<Point> {
        self.points.get(index).copied()
    }

    /// Indices of all points within `radius` metres of `query` (inclusive),
    /// ascending.
    pub fn within_radius(&self, query: &Point, radius: f64) -> Vec<usize> {
        if radius < 0.0 || self.points.is_empty() {
            return Vec::new();
        }
        let r2 = radius * radius;
        let span = (radius / self.cell_size).ceil() as i64;
        let (cx, cy) = Self::key(query, self.cell_size);
        let mut out = Vec::new();
        for gx in (cx - span)..=(cx + span) {
            for gy in (cy - span)..=(cy + span) {
                if let Some(bucket) = self.cells.get(&(gx, gy)) {
                    for &i in bucket {
                        if self.points[i].distance_squared(query) <= r2 {
                            out.push(i);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Index and distance of the nearest point to `query`, searched in
    /// expanding rings of cells. `None` when the grid is empty.
    pub fn nearest(&self, query: &Point) -> Option<(usize, f64)> {
        if self.points.is_empty() {
            return None;
        }
        let (cx, cy) = Self::key(query, self.cell_size);
        let mut best: Option<(usize, f64)> = None;
        let mut ring = 0i64;
        // The maximum useful ring must reach from the query cell to the
        // farthest corner of the indexed extent (the query itself may lie
        // well outside the bounds).
        let max_ring = self
            .bounds
            .map(|b| {
                let far_x = (query.x - b.min_x).abs().max((query.x - b.max_x).abs());
                let far_y = (query.y - b.min_y).abs().max((query.y - b.max_y).abs());
                ((far_x.max(far_y) / self.cell_size).ceil() as i64 + 1).max(1)
            })
            .unwrap_or(1);
        loop {
            for gx in (cx - ring)..=(cx + ring) {
                for gy in (cy - ring)..=(cy + ring) {
                    // Only the boundary of the ring is new.
                    if ring > 0 && (gx - cx).abs() != ring && (gy - cy).abs() != ring {
                        continue;
                    }
                    if let Some(bucket) = self.cells.get(&(gx, gy)) {
                        for &i in bucket {
                            let d2 = self.points[i].distance_squared(query);
                            if best.map(|(_, b)| d2 < b).unwrap_or(true) {
                                best = Some((i, d2));
                            }
                        }
                    }
                }
            }
            if let Some((_, d2)) = best {
                // Once a hit is found, one extra ring guarantees correctness
                // (a closer point can hide in the next ring at most).
                let safe_rings = (d2.sqrt() / self.cell_size).ceil() as i64 + 1;
                if ring >= safe_rings {
                    break;
                }
            }
            ring += 1;
            if ring > max_ring + 1 {
                break;
            }
        }
        best.map(|(i, d2)| (i, d2.sqrt()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn pts() -> Vec<Point> {
        vec![
            Point::new(5.0, 5.0),
            Point::new(25.0, 5.0),
            Point::new(5.0, 25.0),
            Point::new(25.0, 25.0),
            Point::new(400.0, 400.0),
        ]
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let points = pts();
        let grid = UniformGrid::build(&points, 20.0);
        for q in [
            Point::new(0.0, 0.0),
            Point::new(15.0, 15.0),
            Point::new(399.0, 401.0),
        ] {
            for r in [0.0, 10.0, 30.0, 600.0] {
                let got = grid.within_radius(&q, r);
                let want: Vec<usize> = points
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.distance(&q) <= r)
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(got, want, "query {q} radius {r}");
            }
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let points = pts();
        let grid = UniformGrid::build(&points, 10.0);
        for q in [
            Point::new(0.0, 0.0),
            Point::new(26.0, 24.0),
            Point::new(200.0, 200.0),
            Point::new(500.0, 500.0),
        ] {
            let (gi, gd) = grid.nearest(&q).unwrap();
            let (bi, bp) = points
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.distance(&q).total_cmp(&b.1.distance(&q)))
                .unwrap();
            assert!(approx_eq(gd, bp.distance(&q)), "query {q}");
            assert!(approx_eq(points[gi].distance(&q), points[bi].distance(&q)));
        }
    }

    #[test]
    fn empty_grid_behaves_totally() {
        let grid = UniformGrid::build(&[], 10.0);
        assert!(grid.is_empty());
        assert_eq!(grid.len(), 0);
        assert!(grid.nearest(&Point::ORIGIN).is_none());
        assert!(grid.within_radius(&Point::ORIGIN, 100.0).is_empty());
        assert!(grid.bounds().is_none());
    }

    #[test]
    fn non_positive_cell_size_is_clamped() {
        let grid = UniformGrid::build(&pts(), -5.0);
        assert_eq!(grid.len(), 5);
        assert!(grid.nearest(&Point::new(5.0, 5.0)).is_some());
    }

    #[test]
    fn negative_radius_returns_nothing() {
        let grid = UniformGrid::build(&pts(), 10.0);
        assert!(grid.within_radius(&Point::new(5.0, 5.0), -1.0).is_empty());
    }

    #[test]
    fn point_lookup_round_trips() {
        let points = pts();
        let grid = UniformGrid::build(&points, 10.0);
        assert_eq!(grid.point(3), Some(Point::new(25.0, 25.0)));
        assert_eq!(grid.point(99), None);
        assert!(grid.bounds().unwrap().contains(&Point::new(25.0, 25.0)));
    }
}
