//! Polylines: open or closed chains of waypoints with arc-length queries.
//!
//! A patrolling route handed to the simulator is ultimately a closed
//! polyline over target locations. The simulator needs to (a) measure its
//! total length, (b) find the point a given arc-length along it — that is
//! how B-TCTP computes the `n` equal-length segment *start points* — and
//! (c) walk a mule forward by `v · Δt` metres each tick. All three live
//! here.

use crate::point::Point;
use crate::segment::Segment;
use serde::{Deserialize, Serialize};

/// A chain of waypoints. When `closed` is true the last waypoint connects
/// back to the first one, forming a cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polyline {
    points: Vec<Point>,
    closed: bool,
}

impl Polyline {
    /// Creates an open polyline through `points` (in order).
    pub fn open(points: Vec<Point>) -> Self {
        Polyline {
            points,
            closed: false,
        }
    }

    /// Creates a closed polyline (cycle) through `points`; the closing edge
    /// from the last point back to the first is implicit.
    pub fn closed(points: Vec<Point>) -> Self {
        Polyline {
            points,
            closed: true,
        }
    }

    /// The waypoints, without the implicit closing point.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Whether the polyline is a cycle.
    #[inline]
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Number of waypoints.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the polyline has no waypoints.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The edges of the polyline in traversal order (including the closing
    /// edge when the polyline is closed).
    pub fn segments(&self) -> Vec<Segment> {
        let n = self.points.len();
        if n < 2 {
            return Vec::new();
        }
        let mut segs: Vec<Segment> = self
            .points
            .windows(2)
            .map(|w| Segment::new(w[0], w[1]))
            .collect();
        if self.closed {
            segs.push(Segment::new(self.points[n - 1], self.points[0]));
        }
        segs
    }

    /// Total length in metres (including the closing edge when closed).
    pub fn length(&self) -> f64 {
        self.segments().iter().map(Segment::length).sum()
    }

    /// Cumulative arc length at the start of each edge, ending with the
    /// total length. For a closed polyline over `k` points this has `k + 1`
    /// entries; for an open one, `k` entries (or empty for < 2 points).
    pub fn cumulative_lengths(&self) -> Vec<f64> {
        let segs = self.segments();
        if segs.is_empty() {
            return Vec::new();
        }
        let mut cum = Vec::with_capacity(segs.len() + 1);
        let mut acc = 0.0;
        cum.push(0.0);
        for s in &segs {
            acc += s.length();
            cum.push(acc);
        }
        cum
    }

    /// The point located `distance` metres along the polyline from its first
    /// waypoint.
    ///
    /// * Open polyline: the distance is clamped to `[0, length]`.
    /// * Closed polyline: the distance wraps around modulo the total length,
    ///   so walking `k·|P| + d` lands on the same point as walking `d` — a
    ///   mule looping forever around its patrolling circuit.
    ///
    /// Returns `None` for polylines with no waypoints; a single-waypoint
    /// polyline always returns that waypoint.
    pub fn point_at(&self, distance: f64) -> Option<Point> {
        if self.points.is_empty() {
            return None;
        }
        if self.points.len() == 1 {
            return Some(self.points[0]);
        }
        let total = self.length();
        if total <= f64::EPSILON {
            return Some(self.points[0]);
        }
        let mut d = if self.closed {
            distance.rem_euclid(total)
        } else {
            distance.clamp(0.0, total)
        };
        for seg in self.segments() {
            let l = seg.length();
            if d <= l {
                return Some(seg.point_at_distance(d));
            }
            d -= l;
        }
        // Floating point residue: return the final waypoint / start point.
        Some(if self.closed {
            self.points[0]
        } else {
            *self.points.last().unwrap()
        })
    }

    /// Splits a **closed** polyline into `n` equal-arc-length positions,
    /// returning the points at arc lengths `0, |P|/n, 2|P|/n, …` measured
    /// from the first waypoint.
    ///
    /// This is exactly the B-TCTP start-point computation: the circuit is
    /// partitioned into `n` equal-length segments and one mule is stationed
    /// at the head of each. Returns an empty vector when `n == 0` or the
    /// polyline is empty.
    pub fn equal_split_points(&self, n: usize) -> Vec<Point> {
        if n == 0 || self.points.is_empty() {
            return Vec::new();
        }
        let total = self.length();
        (0..n)
            .map(|i| {
                self.point_at(total * i as f64 / n as f64)
                    .expect("polyline verified non-empty")
            })
            .collect()
    }

    /// Arc length from the first waypoint to waypoint `index` along the
    /// traversal direction. Returns `None` when `index` is out of range.
    pub fn arc_length_to_vertex(&self, index: usize) -> Option<f64> {
        if index >= self.points.len() {
            return None;
        }
        let mut acc = 0.0;
        for w in self.points.windows(2).take(index) {
            acc += w[0].distance(&w[1]);
        }
        Some(acc)
    }

    /// Index of the waypoint with the largest `y` coordinate (the "most
    /// north target point", which B-TCTP uses as the anchor for segment
    /// partitioning). Ties are broken by smaller `x`, then smaller index,
    /// so all mules deterministically agree. Returns `None` when empty.
    pub fn northmost_index(&self) -> Option<usize> {
        northmost_index(&self.points)
    }

    /// Rotates a closed polyline so that traversal starts at waypoint
    /// `start`. No-op for open polylines or out-of-range indices.
    pub fn rotated_to_start(&self, start: usize) -> Polyline {
        if !self.closed || start >= self.points.len() {
            return self.clone();
        }
        let mut pts = Vec::with_capacity(self.points.len());
        pts.extend_from_slice(&self.points[start..]);
        pts.extend_from_slice(&self.points[..start]);
        Polyline::closed(pts)
    }
}

/// Index of the point with the largest `y` (ties: smaller `x`, then smaller
/// index). Shared by [`Polyline::northmost_index`] and the planners, which
/// operate on plain point slices.
pub fn northmost_index(points: &[Point]) -> Option<usize> {
    if points.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, p) in points.iter().enumerate().skip(1) {
        let b = &points[best];
        if p.y > b.y || (p.y == b.y && p.x < b.x) {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn unit_square_cycle() -> Polyline {
        Polyline::closed(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ])
    }

    #[test]
    fn length_of_open_and_closed_square() {
        let open = Polyline::open(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ]);
        assert!(approx_eq(open.length(), 30.0));
        assert!(approx_eq(unit_square_cycle().length(), 40.0));
    }

    #[test]
    fn segments_include_closing_edge_only_when_closed() {
        assert_eq!(unit_square_cycle().segments().len(), 4);
        let open = Polyline::open(unit_square_cycle().points().to_vec());
        assert_eq!(open.segments().len(), 3);
        assert!(Polyline::open(vec![Point::ORIGIN]).segments().is_empty());
    }

    #[test]
    fn cumulative_lengths_are_monotone_and_end_at_total() {
        let p = unit_square_cycle();
        let cum = p.cumulative_lengths();
        assert_eq!(cum.len(), 5);
        assert!(approx_eq(cum[0], 0.0));
        assert!(approx_eq(*cum.last().unwrap(), 40.0));
        for w in cum.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn point_at_walks_along_the_cycle_and_wraps() {
        let p = unit_square_cycle();
        assert_eq!(p.point_at(0.0).unwrap(), Point::new(0.0, 0.0));
        assert_eq!(p.point_at(5.0).unwrap(), Point::new(5.0, 0.0));
        assert_eq!(p.point_at(15.0).unwrap(), Point::new(10.0, 5.0));
        assert_eq!(p.point_at(35.0).unwrap(), Point::new(0.0, 5.0));
        // Wrap-around: 45 m ≡ 5 m.
        assert_eq!(p.point_at(45.0).unwrap(), Point::new(5.0, 0.0));
        // Negative distances wrap backwards on a cycle.
        assert_eq!(p.point_at(-5.0).unwrap(), Point::new(0.0, 5.0));
    }

    #[test]
    fn point_at_clamps_on_open_polylines() {
        let open = Polyline::open(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        assert_eq!(open.point_at(-3.0).unwrap(), Point::new(0.0, 0.0));
        assert_eq!(open.point_at(30.0).unwrap(), Point::new(10.0, 0.0));
    }

    #[test]
    fn point_at_degenerate_polylines() {
        assert!(Polyline::open(vec![]).point_at(5.0).is_none());
        let single = Polyline::closed(vec![Point::new(2.0, 3.0)]);
        assert_eq!(single.point_at(100.0).unwrap(), Point::new(2.0, 3.0));
        let coincident = Polyline::closed(vec![Point::new(1.0, 1.0), Point::new(1.0, 1.0)]);
        assert_eq!(coincident.point_at(7.0).unwrap(), Point::new(1.0, 1.0));
    }

    #[test]
    fn equal_split_points_partition_the_cycle_into_equal_arcs() {
        let p = unit_square_cycle();
        let starts = p.equal_split_points(4);
        assert_eq!(starts.len(), 4);
        assert_eq!(starts[0], Point::new(0.0, 0.0));
        assert_eq!(starts[1], Point::new(10.0, 0.0));
        assert_eq!(starts[2], Point::new(10.0, 10.0));
        assert_eq!(starts[3], Point::new(0.0, 10.0));
        // A split count that does not divide the perimeter into vertex-
        // aligned arcs still lands on the path.
        let starts3 = p.equal_split_points(3);
        assert_eq!(starts3.len(), 3);
        assert!(approx_eq(
            starts3[1].distance(&Point::new(10.0, 10.0 / 3.0)),
            0.0
        ));
        assert!(p.equal_split_points(0).is_empty());
    }

    #[test]
    fn arc_length_to_vertex_accumulates_edge_lengths() {
        let p = unit_square_cycle();
        assert!(approx_eq(p.arc_length_to_vertex(0).unwrap(), 0.0));
        assert!(approx_eq(p.arc_length_to_vertex(2).unwrap(), 20.0));
        assert!(p.arc_length_to_vertex(9).is_none());
    }

    #[test]
    fn northmost_index_prefers_larger_y_then_smaller_x() {
        let pts = vec![
            Point::new(3.0, 1.0),
            Point::new(5.0, 9.0),
            Point::new(1.0, 9.0),
            Point::new(2.0, 4.0),
        ];
        assert_eq!(northmost_index(&pts), Some(2));
        assert_eq!(Polyline::closed(pts).northmost_index(), Some(2));
        assert_eq!(northmost_index(&[]), None);
    }

    #[test]
    fn rotated_to_start_preserves_cycle_and_length() {
        let p = unit_square_cycle();
        let r = p.rotated_to_start(2);
        assert_eq!(r.points()[0], Point::new(10.0, 10.0));
        assert_eq!(r.len(), 4);
        assert!(approx_eq(r.length(), p.length()));
        // Out-of-range start index leaves the polyline unchanged.
        assert_eq!(p.rotated_to_start(99), p);
    }
}
