//! Property-based tests for the geometry substrate.
//!
//! These check the invariants the planners rely on, over randomly generated
//! point sets in the paper's 800 m × 800 m field.

use mule_geom::{
    ccw_included_angle, convex_hull, hull, is_convex_polygon, normalize_angle,
    point_in_convex_polygon, polyline::northmost_index, KdTree, Point, Polyline, Segment,
    UniformGrid,
};
use proptest::prelude::*;

fn field_point() -> impl Strategy<Value = Point> {
    (0.0..800.0f64, 0.0..800.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn field_points(min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(field_point(), min..=max)
}

proptest! {
    #[test]
    fn distance_satisfies_triangle_inequality(a in field_point(), b in field_point(), c in field_point()) {
        let direct = a.distance(&c);
        let via_b = a.distance(&b) + b.distance(&c);
        prop_assert!(direct <= via_b + 1e-9);
    }

    #[test]
    fn distance_is_symmetric(a in field_point(), b in field_point()) {
        prop_assert!((a.distance(&b) - b.distance(&a)).abs() <= 1e-12);
    }

    #[test]
    fn advance_towards_never_overshoots_and_shrinks_distance(
        a in field_point(), b in field_point(), d in 0.0..2000.0f64
    ) {
        let c = a.advance_towards(&b, d);
        prop_assert!(c.distance(&b) <= a.distance(&b) + 1e-9);
        // The moved distance never exceeds the request.
        prop_assert!(a.distance(&c) <= d + 1e-9);
    }

    #[test]
    fn normalized_angles_land_in_range(theta in -100.0..100.0f64) {
        let t = normalize_angle(theta);
        prop_assert!((0.0..std::f64::consts::TAU).contains(&t));
    }

    #[test]
    fn ccw_included_angle_is_in_range(a in field_point(), b in field_point(), c in field_point()) {
        if let Some(angle) = ccw_included_angle(&a, &b, &c) {
            prop_assert!((0.0..std::f64::consts::TAU).contains(&angle));
        }
    }

    #[test]
    fn hull_contains_all_points_and_is_convex(points in field_points(1, 60)) {
        let hull_pts = convex_hull(&points);
        prop_assert!(!hull_pts.is_empty());
        prop_assert!(is_convex_polygon(&hull_pts));
        for p in &points {
            prop_assert!(
                point_in_convex_polygon(p, &hull_pts),
                "point {p} escaped its own hull"
            );
        }
        // Hull vertices are a subset of the input.
        for h in &hull_pts {
            prop_assert!(points.iter().any(|p| p.distance(h) <= 1e-9));
        }
    }

    #[test]
    fn hull_perimeter_never_exceeds_any_enclosing_tour(points in field_points(3, 40)) {
        // The convex hull is the shortest closed curve enclosing the points,
        // so it can never be longer than the closed polyline through all
        // points in input order.
        let hull_pts = convex_hull(&points);
        if hull_pts.len() >= 3 {
            let tour_len = Polyline::closed(points.clone()).length();
            prop_assert!(hull::perimeter(&hull_pts) <= tour_len + 1e-6);
        }
    }

    #[test]
    fn detour_cost_is_nonnegative(a in field_point(), b in field_point(), via in field_point()) {
        let seg = Segment::new(a, b);
        prop_assert!(seg.detour_cost(&via) >= -1e-9);
    }

    #[test]
    fn closed_polyline_point_at_wraps_consistently(points in field_points(2, 30), d in 0.0..10_000.0f64) {
        let p = Polyline::closed(points);
        let total = p.length();
        prop_assume!(total > 1e-6);
        let a = p.point_at(d).unwrap();
        let b = p.point_at(d + total).unwrap();
        prop_assert!(a.distance(&b) <= 1e-6, "wrap mismatch: {a} vs {b}");
    }

    #[test]
    fn equal_split_points_lie_on_the_path(points in field_points(2, 25), n in 1usize..12) {
        let p = Polyline::closed(points);
        let total = p.length();
        prop_assume!(total > 1e-6);
        let splits = p.equal_split_points(n);
        prop_assert_eq!(splits.len(), n);
        // Each split point is reachable at its nominal arc length.
        for (i, s) in splits.iter().enumerate() {
            let expected = p.point_at(total * i as f64 / n as f64).unwrap();
            prop_assert!(s.distance(&expected) <= 1e-9);
        }
    }

    #[test]
    fn kdtree_nearest_agrees_with_brute_force(points in field_points(1, 80), q in field_point()) {
        let tree = KdTree::build(&points);
        let (idx, d) = tree.nearest(&q).unwrap();
        let brute = points
            .iter()
            .map(|p| p.distance(&q))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((d - brute).abs() <= 1e-9);
        prop_assert!((points[idx].distance(&q) - brute).abs() <= 1e-9);
    }

    #[test]
    fn kdtree_range_agrees_with_brute_force(points in field_points(0, 60), q in field_point(), r in 0.0..500.0f64) {
        let tree = KdTree::build(&points);
        let got = tree.within_radius(&q, r);
        let want: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(&q) <= r)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn grid_range_agrees_with_brute_force(points in field_points(0, 60), q in field_point(), r in 0.0..300.0f64) {
        let grid = UniformGrid::build(&points, 20.0);
        let got = grid.within_radius(&q, r);
        let want: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(&q) <= r)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn grid_nearest_agrees_with_brute_force(points in field_points(1, 60), q in field_point()) {
        let grid = UniformGrid::build(&points, 35.0);
        let (_, d) = grid.nearest(&q).unwrap();
        let brute = points
            .iter()
            .map(|p| p.distance(&q))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((d - brute).abs() <= 1e-9);
    }

    #[test]
    fn northmost_point_is_at_least_as_north_as_all_others(points in field_points(1, 50)) {
        let idx = northmost_index(&points).unwrap();
        for p in &points {
            prop_assert!(points[idx].y >= p.y);
        }
    }

    #[test]
    fn rotation_preserves_cycle_length(points in field_points(1, 30), start in 0usize..30) {
        let p = Polyline::closed(points.clone());
        let start = start % points.len().max(1);
        let r = p.rotated_to_start(start);
        prop_assert!((p.length() - r.length()).abs() <= 1e-6);
        prop_assert_eq!(p.len(), r.len());
    }
}
