//! Visualise a weighted, recharge-aware patrol: ASCII map on stdout plus an
//! SVG file with every mule's route.
//!
//! Run with:
//! ```text
//! cargo run --example visualize_plan
//! ```

use wmdm_patrol::patrol::rwtctp::RwTctp;
use wmdm_patrol::prelude::*;
use wmdm_patrol::workload::{LayoutKind, WeightSpec};

fn main() {
    let scenario = ScenarioConfig::paper_default()
        .with_targets(18)
        .with_mules(3)
        .with_layout(LayoutKind::DisconnectedClusters {
            clusters: 3,
            cluster_radius_m: 40.0,
        })
        .with_weights(WeightSpec::UniformVips {
            count: 3,
            weight: 3,
        })
        .with_recharge_station(true)
        .with_seed(42)
        .generate();

    println!("Field ('S' sink, 'R' recharge station, 'o' target, digits = VIP weight):\n");
    println!("{}", mule_viz::render_scenario(&scenario, 76, 34));

    let plan = RwTctp::default()
        .plan(&scenario)
        .expect("plannable scenario");
    println!("\nRW-TCTP route ('.' edges, '*' waypoints):\n");
    println!("{}", mule_viz::render_plan(&scenario, &plan, 76, 34));

    let svg = mule_viz::plan_to_svg(&scenario, &plan, &mule_viz::SvgStyle::default());
    let path = std::env::temp_dir().join("wmdm_patrol_plan.svg");
    match std::fs::write(&path, svg) {
        Ok(()) => println!("\nSVG with per-mule routes written to {}", path.display()),
        Err(e) => eprintln!("\ncould not write SVG: {e}"),
    }
}
