//! Head-to-head comparison of every planner on one scenario: Random, Sweep,
//! CHB and B-TCTP — the comparison behind Figures 7 and 8 of the paper.
//!
//! Run with:
//! ```text
//! cargo run --example baseline_comparison
//! ```

use wmdm_patrol::metrics::TextTable;
use wmdm_patrol::prelude::*;
use wmdm_patrol::sim::SimulationConfig;

fn main() {
    let scenario = ScenarioConfig::paper_default()
        .with_targets(12)
        .with_mules(4)
        .with_seed(314)
        .generate();

    let planners: Vec<(&str, Box<dyn Planner>)> = vec![
        ("Random", Box::new(RandomPlanner::new())),
        ("Sweep", Box::new(SweepPlanner::new())),
        ("CHB", Box::new(ChbPlanner::new())),
        ("B-TCTP", Box::new(BTctp::new())),
    ];

    let mut table = TextTable::new(vec![
        "planner",
        "max interval (s)",
        "mean interval (s)",
        "avg SD (s)",
        "avg DCDT (s)",
        "distance (km)",
    ]);

    for (name, planner) in planners {
        let plan = planner.plan(&scenario).expect("plannable scenario");
        let outcome = Simulation::with_config(&scenario, &plan, SimulationConfig::timing_only())
            .run_for(80_000.0);
        let intervals = IntervalReport::from_outcome(&outcome);
        let dcdt = DcdtSeries::from_outcome(&outcome);
        table.add_row(vec![
            name.to_string(),
            format!("{:.0}", intervals.max_interval()),
            format!("{:.0}", intervals.mean_interval()),
            format!("{:.1}", intervals.average_sd()),
            format!("{:.0}", dcdt.average_dcdt(2)),
            format!("{:.1}", outcome.total_distance_m() / 1000.0),
        ]);
    }

    println!("{}", table.render());
    println!(
        "Expected shape (paper §V): B-TCTP has the smallest and most stable visiting \
         intervals (SD ≈ 0); CHB shares the circuit but bunches its mules; Sweep suffers \
         from unequal group sizes; Random is the worst and noisiest."
    );
}
