//! The motivating deployment of the paper: targets scattered over several
//! *disconnected* areas, where no static multi-hop sensor network could
//! reach the sink and mobile data mules provide the only connectivity.
//!
//! Run with:
//! ```text
//! cargo run --example disconnected_field
//! ```

use wmdm_patrol::net::connectivity::connected_components;
use wmdm_patrol::prelude::*;
use wmdm_patrol::sim::SimulationConfig;
use wmdm_patrol::workload::LayoutKind;

fn main() {
    // 24 targets in 3 tight clusters far apart — the clusters are internally
    // connected at the 20 m communication range but mutually unreachable.
    let scenario = ScenarioConfig::paper_default()
        .with_targets(24)
        .with_mules(3)
        .with_layout(LayoutKind::DisconnectedClusters {
            clusters: 3,
            cluster_radius_m: 30.0,
        })
        .with_seed(11)
        .generate();

    let target_positions: Vec<_> = scenario
        .field()
        .nodes()
        .iter()
        .filter(|n| n.kind == NodeKind::Target)
        .map(|n| n.position)
        .collect();
    let comm_range = scenario.field().radio().communication_range_m;
    let components = connected_components(&target_positions, comm_range);
    println!(
        "{} targets form {} disconnected areas at the {} m communication range:",
        target_positions.len(),
        components.len(),
        comm_range
    );
    for (i, c) in components.iter().enumerate() {
        println!("  area {}: {} targets", i + 1, c.len());
    }

    // A static network cannot bridge the areas; B-TCTP mules can.
    let plan = BTctp::new().plan(&scenario).expect("plannable scenario");
    println!(
        "\nB-TCTP stitches all areas into one {:.0} m patrolling circuit.",
        plan.itineraries[0].cycle_length()
    );

    let outcome = Simulation::with_config(&scenario, &plan, SimulationConfig::timing_only())
        .run_for(100_000.0);
    let report = IntervalReport::from_outcome(&outcome);
    println!(
        "after {:.0} s every target has been visited at least {} times; \
         max interval {:.0} s, per-target SD {:.2} s",
        outcome.horizon_s,
        outcome.min_visits_per_node(),
        report.max_interval(),
        report.average_sd()
    );
    println!(
        "data ferried back to the sink: {:.1} MB",
        outcome.total_delivered_bytes() / 1.0e6
    );
}
