//! Energy-aware patrolling with RW-TCTP: the planner splices the recharge
//! station into a Weighted Recharge Path and schedules a recharge round
//! every `r` rounds (Eq. 4), so the mules never run out of energy.
//!
//! Run with:
//! ```text
//! cargo run --example recharge_planning
//! ```

use wmdm_patrol::energy::EnergyModel;
use wmdm_patrol::patrol::rwtctp::RwTctp;
use wmdm_patrol::prelude::*;
use wmdm_patrol::sim::SimulationConfig;
use wmdm_patrol::workload::WeightSpec;

fn main() {
    let scenario = ScenarioConfig::paper_default()
        .with_targets(15)
        .with_mules(4)
        .with_weights(WeightSpec::UniformVips {
            count: 2,
            weight: 2,
        })
        .with_recharge_station(true)
        .with_seed(7)
        .generate();

    // A deliberately small battery so the recharge schedule matters: roughly
    // 150 kJ buys ~18 km of movement at the paper's 8.267 J/m, i.e. a few
    // traversals of the weighted patrolling path.
    let energy = EnergyModel {
        initial_energy_j: 150_000.0,
        ..EnergyModel::paper_default()
    };

    let planner = RwTctp::with_energy(BreakEdgePolicy::ShortestLength, energy);
    let schedule = planner.build_schedule(&scenario).expect("schedule");
    println!(
        "WPP length {:.0} m, WRP length {:.0} m (recharge detour {:.0} m)",
        schedule.wpp_length(),
        schedule.wrp_length(),
        schedule.recharge_detour()
    );
    println!(
        "Eq. 4: r = {} rounds per charge → patrol the WPP {} times, then take the WRP",
        schedule.rounds.rounds_per_charge,
        schedule.rounds.patrol_rounds_between_recharges()
    );

    let plan = planner.plan(&scenario).expect("plannable scenario");
    let outcome = Simulation::with_config(
        &scenario,
        &plan,
        SimulationConfig::default().with_energy(energy),
    )
    .run_for(150_000.0);

    println!();
    println!("simulated {:.0} s with RW-TCTP:", outcome.horizon_s);
    for m in &outcome.mules {
        println!(
            "  mule {}: {:.1} km travelled, {} recharges, battery at {:.0} J, survived: {}",
            m.mule_index,
            m.distance_m / 1000.0,
            m.recharges,
            m.remaining_energy_j,
            m.status.survived()
        );
    }
    println!("fleet survived: {}", outcome.all_mules_survived());

    // The same scenario with a recharge-unaware planner strands the fleet.
    let naive = WTctp::new(BreakEdgePolicy::ShortestLength);
    let naive_plan = naive.plan(&scenario).expect("plannable scenario");
    let naive_outcome = Simulation::with_config(
        &scenario,
        &naive_plan,
        SimulationConfig::default().with_energy(energy),
    )
    .run_for(150_000.0);
    println!(
        "same battery without recharge planning (W-TCTP): fleet survived = {}",
        naive_outcome.all_mules_survived()
    );
}
