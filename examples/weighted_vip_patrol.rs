//! Weighted patrolling: some targets are VIPs that must be visited several
//! times per traversal. Compares the two W-TCTP break-edge policies
//! (Shortest-Length vs Balancing-Length) on the same scenario.
//!
//! Run with:
//! ```text
//! cargo run --example weighted_vip_patrol
//! ```

use wmdm_patrol::prelude::*;
use wmdm_patrol::workload::WeightSpec;

fn main() {
    // 20 targets, 4 of which are VIPs with weight 3 (they must be visited
    // three times per complete traversal of the weighted patrolling path).
    let scenario = ScenarioConfig::paper_default()
        .with_targets(20)
        .with_mules(1)
        .with_weights(WeightSpec::UniformVips {
            count: 4,
            weight: 3,
        })
        .with_seed(99)
        .generate();

    let vips: Vec<String> = scenario
        .field()
        .vips()
        .iter()
        .map(|v| format!("{} (w={})", v.id, v.weight.value()))
        .collect();
    println!("VIP targets: {}", vips.join(", "));

    for policy in [
        BreakEdgePolicy::ShortestLength,
        BreakEdgePolicy::BalancingLength,
    ] {
        let planner = WTctp::new(policy);
        let plan = planner.plan(&scenario).expect("plannable scenario");
        let wpp_len = plan.itineraries[0].cycle_length();

        // Check the Definition-3 invariant: each VIP appears `w` times per
        // traversal, every NTP exactly once.
        let sample_vip = scenario.field().vips()[0];
        let vip_visits = plan.itineraries[0].visits_per_round(sample_vip.id);

        let outcome = Simulation::with_config(
            &scenario,
            &plan,
            wmdm_patrol::sim::SimulationConfig::timing_only(),
        )
        .run_for(200_000.0);
        let report = IntervalReport::from_outcome(&outcome);
        let vip_ids: Vec<_> = scenario.field().vips().iter().map(|v| v.id).collect();
        let vip_sds: Vec<f64> = vip_ids
            .iter()
            .filter_map(|id| report.node_sd(*id))
            .collect();
        let avg_vip_sd = vip_sds.iter().sum::<f64>() / vip_sds.len().max(1) as f64;

        println!();
        println!("policy: {}", policy.label());
        println!("  WPP length: {wpp_len:.0} m");
        println!("  visits of {} per traversal: {vip_visits}", sample_vip.id);
        println!("  max visiting interval: {:.1} s", report.max_interval());
        println!("  average SD of VIP visiting intervals: {avg_vip_sd:.1} s");
    }

    println!();
    println!(
        "Expected shape (paper Figs. 9-10): the Shortest-Length policy gives the shorter \
         path and lower DCDT, the Balancing-Length policy gives the steadier VIP intervals."
    );
}
