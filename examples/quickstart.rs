//! Quickstart: plan a B-TCTP patrol for the paper's default scenario,
//! simulate it, and print the visiting-interval report.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use wmdm_patrol::prelude::*;

fn main() {
    // The paper's §5.1 setup: an 800 m × 800 m field, 10 uniformly random
    // targets, 4 data mules moving at 2 m/s, sink at the field centre.
    let scenario = ScenarioConfig::paper_default()
        .with_targets(10)
        .with_mules(4)
        .with_seed(2026)
        .generate();

    println!(
        "Scenario: {} targets + sink in an {:.0} m field, {} mules",
        scenario.field().target_count(),
        scenario.field().bounds().width(),
        scenario.mule_count()
    );

    // Phase 1+2 of B-TCTP: shared Hamiltonian circuit, equal-arc start
    // points, every mule assigned to one of them.
    let plan = BTctp::new().plan(&scenario).expect("plannable scenario");
    println!(
        "B-TCTP circuit length: {:.0} m (shared by all {} mules)",
        plan.itineraries[0].cycle_length(),
        plan.mule_count()
    );

    // Simulate 12 hours of patrolling. The unweighted figures of the paper
    // are pure timing experiments, so energy accounting is disabled here;
    // see examples/recharge_planning.rs for the energy-aware planner.
    let config = wmdm_patrol::sim::SimulationConfig::timing_only();
    let outcome = Simulation::with_config(&scenario, &plan, config).run_for(43_200.0);
    println!(
        "Simulated {:.0} s: {} visits, {:.1} km travelled by the fleet",
        outcome.horizon_s,
        outcome.total_visits(),
        outcome.total_distance_m() / 1000.0,
    );

    // The paper's headline metric: the visiting interval of every target and
    // its standard deviation (B-TCTP keeps the SD at zero).
    let report = IntervalReport::from_outcome(&outcome);
    println!(
        "max visiting interval: {:.1} s, mean: {:.1} s, average per-target SD: {:.3} s",
        report.max_interval(),
        report.mean_interval(),
        report.average_sd()
    );

    // The theoretical steady-state interval is |P| / (n · v).
    let expected = plan.itineraries[0].cycle_length() / (plan.mule_count() as f64 * 2.0);
    println!("theoretical steady-state interval |P|/(n*v): {expected:.1} s");

    let dcdt = DcdtSeries::from_outcome(&outcome);
    println!(
        "average data-collection delay after warm-up: {:.1} s",
        dcdt.average_dcdt(2)
    );
}
